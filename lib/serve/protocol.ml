(* The `waco serve` wire protocol: length-prefixed, versioned frames over a
   Unix-domain socket.

   Every frame is a 10-byte header followed by the payload:

     offset 0..3   magic "WSRV"
     offset 4      protocol version (this build speaks 1)
     offset 5      message type
     offset 6..9   payload length, big-endian unsigned 32-bit

   The decoder is total: any byte sequence yields [`Frame]/[`Need]/[`Bad],
   never an exception, so a malicious or truncated client can at worst get
   its own connection dropped.  Payload bodies are line-oriented key=value
   text (the repo's house style for artifacts), parsed with the same
   no-exceptions discipline. *)

let magic = "WSRV"
let version = 1

(* Largest payload a peer may send: bounds a hostile length field before any
   allocation happens.  16 MiB fits an inline matrix of ~500k nonzeros. *)
let max_payload = 16 * 1024 * 1024

let header_bytes = 10

(* --- message types (one byte on the wire) --- *)

let msg_query = 1
let msg_stats = 2
let msg_ping = 3
let msg_shutdown = 4
let msg_answer = 129
let msg_stats_json = 130
let msg_pong = 131
let msg_bye = 132
let msg_busy = 133
let msg_error = 192

(* --- framing --- *)

let encode_frame ~msg body =
  let n = String.length body in
  if n > max_payload then invalid_arg "Protocol.encode_frame: payload too large";
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 (Char.chr (msg land 0xFF));
  Bytes.set b 6 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 7 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 8 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 9 (Char.chr (n land 0xFF));
  Bytes.blit_string body 0 b header_bytes n;
  Bytes.unsafe_to_string b

type progress =
  [ `Frame of int * string * int  (** (msg type, body, bytes consumed) *)
  | `Need of int  (** incomplete; at least this many more bytes *)
  | `Bad of string  (** unrecoverable framing damage; drop the connection *)
  ]

let decode_frame (buf : string) : progress =
  let have = String.length buf in
  if have < header_bytes then
    (* Reject a wrong magic as soon as the prefix can't match, so garbage
       connections die on their first bytes rather than stalling forever. *)
    if have > 0 && not (String.starts_with ~prefix:(String.sub buf 0 (min have 4)) magic)
    then `Bad "bad magic"
    else `Need (header_bytes - have)
  else if String.sub buf 0 4 <> magic then `Bad "bad magic"
  else
    let v = Char.code buf.[4] in
    if v <> version then `Bad (Printf.sprintf "protocol version %d (this build speaks %d)" v version)
    else
      let msg = Char.code buf.[5] in
      let len =
        (Char.code buf.[6] lsl 24)
        lor (Char.code buf.[7] lsl 16)
        lor (Char.code buf.[8] lsl 8)
        lor Char.code buf.[9]
      in
      if len > max_payload then
        `Bad (Printf.sprintf "declared payload of %d bytes exceeds the %d limit" len max_payload)
      else if have < header_bytes + len then `Need (header_bytes + len - have)
      else `Frame (msg, String.sub buf header_bytes len, header_bytes + len)

(* --- request bodies --- *)

type source =
  | Path of string  (** a MatrixMarket file the daemon can read *)
  | Inline of { nrows : int; ncols : int; entries : (int * int * float) array }

type query = {
  qid : string;
  source : source;
  measure : bool;
  deadline_ms : int;  (* 0 = no deadline; omitted on the wire when 0 *)
  kernel : Waco.Kernel.t option;
      (* None = omitted on the wire: a pre-kernel client, served the daemon's
         default slot.  An unrecognized kernel name is a decode Error, never
         a silent default. *)
}

type request = Query of query | Stats | Ping | Shutdown

(* Bound on inline entries independent of byte size, so a tiny frame cannot
   declare a huge entry count and stall the parser. *)
let max_inline_nnz = 1_000_000

(* Bound on a declared deadline so arithmetic on arrival + deadline can
   never overflow or go absurd: one hour. *)
let max_deadline_ms = 3_600_000

let encode_query (q : query) =
  let buf =
    Buffer.create
      (match q.source with
      (* Entry lines run ~26 bytes ("r c " plus a %.17g float); sizing the
         buffer up front keeps the encoder from doubling-and-copying its way
         through a large inline matrix. *)
      | Inline { entries; _ } -> 64 + (32 * Array.length entries)
      | Path _ -> 256)
  in
  if String.contains q.qid '\n' then invalid_arg "Protocol.encode_query: id with newline";
  Printf.bprintf buf "id=%s\n" q.qid;
  Printf.bprintf buf "measure=%d\n" (if q.measure then 1 else 0);
  (match q.kernel with
  | Some k -> Printf.bprintf buf "kernel=%s\n" (Waco.Kernel.name k)
  | None -> ());
  if q.deadline_ms > 0 then Printf.bprintf buf "deadline_ms=%d\n" q.deadline_ms;
  (match q.source with
  | Path p ->
      if String.contains p '\n' then invalid_arg "Protocol.encode_query: path with newline";
      Printf.bprintf buf "source=path\npath=%s\n" p
  | Inline { nrows; ncols; entries } ->
      Printf.bprintf buf "source=inline\ndims=%d %d\nnnz=%d\n" nrows ncols
        (Array.length entries);
      (* The entry-line hot loop: [string_of_int] coordinates and a "%h"
         hex-float value — bit-exact like the old "%.17g" (the decoder's
         [float_of_string] accepts both grammars) but formatted by mantissa
         bit manipulation instead of a ~600ns decimal conversion. *)
      Array.iter
        (fun (r, c, v) ->
          Buffer.add_string buf (string_of_int r);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int c);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%h" v);
          Buffer.add_char buf '\n')
        entries);
  Buffer.contents buf

let request_to_frame = function
  | Query q -> encode_frame ~msg:msg_query (encode_query q)
  | Stats -> encode_frame ~msg:msg_stats ""
  | Ping -> encode_frame ~msg:msg_ping ""
  | Shutdown -> encode_frame ~msg:msg_shutdown ""

(* key=value line split; Error for a line without '='. *)
let kv line =
  match String.index_opt line '=' with
  | Some i ->
      Ok (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
  | None -> Error (Printf.sprintf "malformed line %S (expected key=value)" line)

let ( let* ) r f = Result.bind r f

(* A query body is scanned in one forward pass over the raw string instead
   of being split into a line list: on the serving hot path an inline query
   is mostly entry lines ("r c v"), and the split-filter-split pipeline
   allocated three short-lived lists per entry.  Semantics are unchanged:
   empty lines are skipped (and not counted against nnz), the header ends at
   the first non-empty line without '=', duplicate header keys resolve to
   the last occurrence, and entry lines are strict single-space
   three-field records. *)

(* End of the line starting at [i]: the next '\n', or the end of the body. *)
let line_end body i =
  match String.index_from_opt body i '\n' with
  | Some j -> j
  | None -> String.length body

(* Count the non-empty lines from [i] to the end of the body. *)
let count_lines body i =
  let n = String.length body in
  let rec go acc i =
    if i >= n then acc
    else
      let j = line_end body i in
      go (if j = i then acc else acc + 1) (j + 1)
  in
  go 0 i

(* Coordinate token [i, j): the common shape — a plain run of at most 18
   decimal digits (what the encoder emits, and short enough that the
   accumulator cannot overflow) — parses inline without a substring; any
   other shape falls back to [int_of_string_opt] on the substring, so the
   accepted grammar ("0x1f", "1_000", "+3"...) is exactly the stdlib's.
   Returns a negative sentinel on failure: the caller's [>= 0] bounds check
   rejects it just as it rejected a parsed negative before. *)
let parse_coord body i j =
  let len = j - i in
  if len >= 1 && len <= 18 then begin
    let v = ref 0 in
    let k = ref i in
    let ok = ref true in
    while !ok && !k < j do
      let c = Char.code (String.unsafe_get body !k) - Char.code '0' in
      if c >= 0 && c <= 9 then begin
        v := (!v * 10) + c;
        incr k
      end
      else ok := false
    done;
    if !ok then !v
    else
      match int_of_string_opt (String.sub body i len) with
      | Some v -> v
      | None -> min_int
  end
  else
    match int_of_string_opt (String.sub body i len) with
    | Some v -> v
    | None -> min_int

(* Parse one entry line [i, j): "r c v", exactly two spaces, the same field
   boundaries [String.split_on_char ' '] produced (so "1  2 3" and trailing
   spaces fail identically); the value goes through [float_of_string_opt] on
   the substring (exact stdlib rounding and grammar).  [store] receives the
   validated triple; any malformation answers the old "bad entry" message. *)
let parse_entry body i j ~nrows ~ncols ~store =
  let bad () = Error (Printf.sprintf "bad entry %S" (String.sub body i (j - i))) in
  match String.index_from_opt body i ' ' with
  | Some s1 when s1 < j -> (
      match String.index_from_opt body (s1 + 1) ' ' with
      | Some s2 when s2 < j -> (
          match String.index_from_opt body (s2 + 1) ' ' with
          | Some s3 when s3 < j -> bad ()
          | _ ->
              let r = parse_coord body i s1 in
              let c = parse_coord body (s1 + 1) s2 in
              if r >= 0 && r < nrows && c >= 0 && c < ncols then
                match
                  float_of_string_opt (String.sub body (s2 + 1) (j - s2 - 1))
                with
                | Some v when Float.is_finite v ->
                    store r c v;
                    Ok ()
                | _ -> bad ()
              else bad ())
      | _ -> bad ())
  | _ -> bad ()

let decode_query body : (query, string) result =
  let n = String.length body in
  (* Header phase: key=value lines until the first non-empty line without
     '=' (where the entry lines start).  Fields accumulate most-recent
     first, so [List.assoc_opt] resolves duplicates to the last occurrence
     exactly as before. *)
  let rec header acc i =
    if i >= n then Ok (acc, n)
    else
      let j = line_end body i in
      if j = i then header acc (j + 1)
      else
        match String.index_from_opt body i '=' with
        | Some e when e < j ->
            header
              ((String.sub body i (e - i), String.sub body (e + 1) (j - e - 1))
              :: acc)
              (j + 1)
        | _ -> Ok (acc, i)
  in
  let* fields, entry_off = header [] 0 in
  let field k = List.assoc_opt k fields in
  let qid = Option.value ~default:"" (field "id") in
  let* measure =
    match field "measure" with
    | None | Some "1" -> Ok true
    | Some "0" -> Ok false
    | Some other -> Error (Printf.sprintf "measure=%s (expected 0 or 1)" other)
  in
  let* kernel =
    match field "kernel" with
    | None -> Ok None
    | Some s -> (
        match Waco.Kernel.of_name s with
        | Some k -> Ok (Some k)
        | None ->
            Error
              (Printf.sprintf
                 "kernel=%s (expected one of %s)" s
                 (String.concat ", " (List.map Waco.Kernel.name Waco.Kernel.all))))
  in
  let* deadline_ms =
    match field "deadline_ms" with
    | None -> Ok 0
    | Some s -> (
        match int_of_string_opt s with
        | Some d when d >= 0 && d <= max_deadline_ms -> Ok d
        | _ ->
            Error
              (Printf.sprintf "deadline_ms=%s (expected 0..%d)" s max_deadline_ms))
  in
  let* source =
    match field "source" with
    | Some "path" -> (
        match field "path" with
        | Some p when p <> "" -> Ok (Path p)
        | _ -> Error "source=path without a path field")
    | Some "inline" -> (
        match (field "dims", field "nnz") with
        | Some dims, Some nnz_s -> (
            let* nrows, ncols =
              match String.split_on_char ' ' dims with
              | [ r; c ] -> (
                  match (int_of_string_opt r, int_of_string_opt c) with
                  | Some r, Some c when r >= 1 && c >= 1 -> Ok (r, c)
                  | _ -> Error (Printf.sprintf "bad dims %S" dims))
              | _ -> Error (Printf.sprintf "bad dims %S" dims)
            in
            match int_of_string_opt nnz_s with
            | Some nnz when nnz >= 0 && nnz <= max_inline_nnz ->
                let have = count_lines body entry_off in
                if have <> nnz then
                  Error (Printf.sprintf "nnz=%d but %d entry lines" nnz have)
                else begin
                  let entries = Array.make nnz (0, 0, 0.0) in
                  (* Fill [entries] in order; the first malformed line wins
                     the error, as the old fold did. *)
                  let rec fill k i =
                    if k = nnz then Ok (Inline { nrows; ncols; entries })
                    else
                      let j = line_end body i in
                      if j = i then fill k (j + 1)
                      else
                        let* () =
                          parse_entry body i j ~nrows ~ncols ~store:(fun r c v ->
                              entries.(k) <- (r, c, v))
                        in
                        fill (k + 1) (j + 1)
                  in
                  fill 0 entry_off
                end
            | _ -> Error (Printf.sprintf "bad nnz %S" nnz_s))
        | _ -> Error "source=inline needs dims and nnz fields")
    | Some other -> Error (Printf.sprintf "unknown source %S" other)
    | None -> Error "missing source field"
  in
  Ok { qid; source; measure; deadline_ms; kernel }

let request_of_frame ~msg body : (request, string) result =
  if msg = msg_query then
    let* q = decode_query body in
    Ok (Query q)
  else if msg = msg_stats then Ok Stats
  else if msg = msg_ping then Ok Ping
  else if msg = msg_shutdown then Ok Shutdown
  else Error (Printf.sprintf "unknown request type %d" msg)

(* --- response bodies --- *)

type answer = {
  schedule : string;  (** dataset-encoded SuperSchedule ([Sched_io]) *)
  predicted : float;
  measured : float;  (** simulator seconds; NaN when measurement was off *)
  cache_hit : bool;
  degraded : bool;
  degraded_reason : string option;
  spans : (string * float) list;
      (** per-request trace: phase name -> seconds, in phase order *)
}

type response =
  | Answer of answer
  | Stats_json of string
  | Pong
  | Bye
  | Busy of { retry_after_ms : int }
      (** load shed: the daemon's pending queue is past its high-water mark;
          retry after the hinted delay instead of hanging *)
  | Error_msg of string

let encode_answer (a : answer) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "schedule=%s\n" a.schedule;
  (* Hex floats, like the query entry lines: bit-exact and cheap to format;
     [decode_answer]'s [float_of_string_opt] reads either grammar. *)
  Printf.bprintf buf "predicted=%h\n" a.predicted;
  Printf.bprintf buf "measured=%h\n" a.measured;
  Printf.bprintf buf "cache=%s\n" (if a.cache_hit then "hit" else "miss");
  Printf.bprintf buf "degraded=%d\n" (if a.degraded then 1 else 0);
  (match a.degraded_reason with
  | Some r -> Printf.bprintf buf "reason=%s\n" (String.map (fun c -> if c = '\n' then ' ' else c) r)
  | None -> ());
  List.iter (fun (k, s) -> Printf.bprintf buf "span.%s=%h\n" k s) a.spans;
  Buffer.contents buf

let response_to_frame = function
  | Answer a -> encode_frame ~msg:msg_answer (encode_answer a)
  | Stats_json j -> encode_frame ~msg:msg_stats_json j
  | Pong -> encode_frame ~msg:msg_pong ""
  | Bye -> encode_frame ~msg:msg_bye ""
  | Busy { retry_after_ms } ->
      encode_frame ~msg:msg_busy
        (Printf.sprintf "retry_after_ms=%d\n" retry_after_ms)
  | Error_msg m -> encode_frame ~msg:msg_error m

let decode_answer body : (answer, string) result =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
  let* fields =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* p = kv line in
        Ok (p :: acc))
      (Ok []) lines
  in
  let fields = List.rev fields in
  let field k = List.assoc_opt k fields in
  let* schedule =
    match field "schedule" with
    | Some s -> Ok s
    | None -> Error "answer without a schedule"
  in
  let fget k default =
    match field k with
    | Some s -> ( match float_of_string_opt s with Some v -> v | None -> default)
    | None -> default
  in
  let spans =
    List.filter_map
      (fun (k, v) ->
        if String.starts_with ~prefix:"span." k then
          Option.map
            (fun s -> (String.sub k 5 (String.length k - 5), s))
            (float_of_string_opt v)
        else None)
      fields
  in
  Ok
    {
      schedule;
      predicted = fget "predicted" Float.nan;
      measured = fget "measured" Float.nan;
      cache_hit = field "cache" = Some "hit";
      degraded = field "degraded" = Some "1";
      degraded_reason = field "reason";
      spans;
    }

let decode_busy body : (response, string) result =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' body) in
  let* fields =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* p = kv line in
        Ok (p :: acc))
      (Ok []) lines
  in
  match List.assoc_opt "retry_after_ms" fields with
  | Some s -> (
      match int_of_string_opt s with
      | Some r when r >= 0 -> Ok (Busy { retry_after_ms = r })
      | _ -> Error (Printf.sprintf "bad retry_after_ms %S" s))
  | None -> Error "busy response without retry_after_ms"

let response_of_frame ~msg body : (response, string) result =
  if msg = msg_answer then
    let* a = decode_answer body in
    Ok (Answer a)
  else if msg = msg_stats_json then Ok (Stats_json body)
  else if msg = msg_pong then Ok Pong
  else if msg = msg_bye then Ok Bye
  else if msg = msg_busy then decode_busy body
  else if msg = msg_error then Ok (Error_msg body)
  else Error (Printf.sprintf "unknown response type %d" msg)
