(* The sparsity-pattern fingerprint the schedule cache is keyed by: shape +
   nonzero count + a fixed-size pooled density sketch.

   The sketch pools the pattern onto a [cells] x [cells] grid (each cell
   covers an equal slab of rows x cols), counts the nonzeros landing in each
   cell, normalizes by the total and quantizes to a byte.  Two matrices with
   the same shape, nnz and coarse density layout — the inputs WACO's
   extractor is sensitive to at the top of its pyramid — therefore share a
   key and a cached answer, while a transposed, re-banded or re-clustered
   pattern of the same size does not.

   Quantization makes the key stable under float noise: the sketch is pure
   integer arithmetic from the COO coordinates. *)

open Sptensor

let cells = 8

type t = {
  nrows : int;
  ncols : int;
  nnz : int;
  sketch : int array;  (* cells * cells bytes, row-major, each 0..255 *)
}

let of_coo (m : Coo.t) =
  let nnz = Coo.nnz m in
  let counts = Array.make (cells * cells) 0 in
  for k = 0 to nnz - 1 do
    (* Cell index by integer proportion: row r of nrows lands in cell
       r * cells / nrows (nrows >= 1 by Coo's construction). *)
    let cr = m.Coo.rows.(k) * cells / m.Coo.nrows in
    let cc = m.Coo.cols.(k) * cells / m.Coo.ncols in
    let cr = min (cells - 1) cr and cc = min (cells - 1) cc in
    counts.((cr * cells) + cc) <- counts.((cr * cells) + cc) + 1
  done;
  let sketch =
    if nnz = 0 then counts
    else
      Array.map
        (fun c ->
          (* Rounded 0..255 share of the total; a nonempty cell never
             quantizes to 0, so presence is preserved. *)
          let q = ((c * 255) + (nnz / 2)) / nnz in
          if c > 0 then max 1 (min 255 q) else 0)
        counts
  in
  { nrows = m.Coo.nrows; ncols = m.Coo.ncols; nnz; sketch }

let key t =
  let buf = Buffer.create (16 + (2 * cells * cells)) in
  Printf.bprintf buf "fp1:%dx%d:%d:" t.nrows t.ncols t.nnz;
  Array.iter (fun b -> Printf.bprintf buf "%02x" b) t.sketch;
  Buffer.contents buf

let of_key s =
  match String.split_on_char ':' s with
  | [ "fp1"; dims; nnz_s; hex ] -> (
      match String.split_on_char 'x' dims with
      | [ r; c ] -> (
          match
            (int_of_string_opt r, int_of_string_opt c, int_of_string_opt nnz_s)
          with
          | Some nrows, Some ncols, Some nnz
            when nrows >= 1 && ncols >= 1 && nnz >= 0
                 && String.length hex = 2 * cells * cells -> (
              let sketch = Array.make (cells * cells) 0 in
              match
                Array.iteri
                  (fun i _ ->
                    match int_of_string_opt ("0x" ^ String.sub hex (2 * i) 2) with
                    | Some b -> sketch.(i) <- b
                    | None -> raise Exit)
                  sketch
              with
              | () -> Some { nrows; ncols; nnz; sketch }
              | exception Exit -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols && a.nnz = b.nnz && a.sketch = b.sketch

let pp fmt t =
  Format.fprintf fmt "%dx%d nnz=%d sketch=%s" t.nrows t.ncols t.nnz
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.sketch)))
