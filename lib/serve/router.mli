(** The `waco route` daemon: a consistent-hash front tier that spreads
    tuning queries over N shard daemons by sparsity fingerprint.

    Clients speak the unchanged {!Protocol} to the router; the router
    relays each query's frame bytes verbatim to the shard that owns its
    [fp1:] fingerprint on the hash ring, and relays the shard's response
    frame verbatim back — including a [Busy] shed, whose [retry_after_ms]
    hint reaches the client exactly as the shard computed it.  Per-client
    FIFO order is preserved end to end even when one client's queries fan
    out to different shards.  Control requests bypass hashing: [ping]
    answers locally, [stats] fans out to every live shard and aggregates,
    [shutdown] stops the router (shards have their own lifecycles).

    A dead shard is removed from the ring and its in-flight predict-only
    queries are retried on their new ring owner (bounded by
    [failover_hops]); measured queries answer an honest [error] — a
    measurement may have half-run, and silently re-running it elsewhere
    would hide that.  Dead shards are redialed with capped backoff and
    re-admitted to the ring on reconnect, warm from their own persistent
    caches. *)

(** The consistent-hash ring, exposed for property tests and for callers
    that want to predict placement: FNV-1a over the fingerprint's sketch
    hex, {!Ring.vnodes} virtual points per shard, successor-point lookup.
    Ring membership changes remap only the departed (or joined) shard's
    arcs — every other key keeps its owner. *)
module Ring : sig
  type t

  val vnodes : int
  (** Virtual points per shard (64). *)

  val create : string list -> t
  (** Raises [Invalid_argument] on an empty member list. *)

  val members : t -> string list

  val lookup : t -> string -> string
  (** [lookup ring key] is the member owning [key]'s successor point.
      [key] is a routing key — see {!routing_key}. *)

  val routing_key : string -> string
  (** The hashed portion of a cache/fingerprint key: the sketch hex of an
      [fp1:…] key (shape and nnz stripped, so routing sees only the
      density layout); any other string routes as itself. *)
end

type t

val create :
  ?max_pending:int ->
  ?failover_hops:int ->
  ?idle_timeout_s:float ->
  ?frame_timeout_s:float ->
  ?write_timeout_s:float ->
  ?connect_timeout_s:float ->
  ?reconnect_base_s:float ->
  ?reconnect_max_s:float ->
  ?log:(string -> unit) ->
  listen:string ->
  shards:string list ->
  unit ->
  t
(** [listen] and each shard endpoint are {!Addr} specs.  [max_pending]
    (default 1024) is the high-water mark on queries awaiting a shard
    answer: past it the router sheds with its own queue-depth hint (a
    shard's relayed [Busy] always carries the shard's hint, never a
    synthesized one).  [failover_hops] (default 1) bounds how many
    {e additional} shards a predict-only query may be retried on after a
    shard death.  The timeout knobs mirror {!Server.create}'s reaper and
    bounded-writer contract; [reconnect_base_s]/[reconnect_max_s] (defaults
    0.05/2.0) pace the redial of dead shards.  Raises [Invalid_argument]
    on an empty or duplicate-laden shard list or a malformed spec. *)

val run : ?on_ready:(unit -> unit) -> t -> unit
(** Bind, dial every shard once (a shard down at startup is logged and
    redialed, not fatal), call [on_ready], route until [shutdown].  On
    exit every connection is closed and a Unix listen socket unlinked. *)

val bound_endpoint : t -> string option
(** The endpoint actually bound once listening ([tcp:HOST:0] resolved). *)

val stats_json : t -> string
(** The router-local counters (routed/relayed/failovers/sheds/deaths…) as
    a JSON object — the ["router"] section of the aggregated [stats]
    answer, without the shard fan-out. *)
