(* Shared experimental setup: corpora, trained models and tuner indexes,
   cached so the bench executable trains each (algorithm, machine, extractor)
   cost model at most once per run.  All sizes honour WACO_SCALE/WACO_EPOCHS. *)

open Sptensor
open Schedule
open Machine_model

let algo_of_name s =
  match Algorithm.of_name s with
  | Some a -> a
  | None -> invalid_arg ("Lab.algo_of_name: " ^ s)

(* The four evaluation algorithms with the paper's dense sizes: |j|=256 for
   SpMM/SDDMM and |j|=16 for MTTKRP.  The dense operand is analytic in the
   simulator, so the paper's sizes cost nothing extra. *)
let algorithms =
  [ Algorithm.Spmv; Algorithm.Spmm 256; Algorithm.Sddmm 256; Algorithm.Mttkrp 16 ]

let train_matrix_count () = Waco.Config.scaled 40
let test_matrix_count () = Waco.Config.scaled 30
let schedules_per_matrix () = Waco.Config.scaled 30

let max_dim = 1024
let max_nnz = 100000

(* Deterministic sub-streams so each corpus is independent of the others. *)
let rng_for tag =
  let base = Rng.create (Waco.Config.seed ()) in
  let r = ref (Rng.split base) in
  String.iter (fun c -> for _ = 0 to Char.code c mod 7 do r := Rng.split !r done) tag;
  !r

let train_corpus_2d =
  lazy
    (let rng = rng_for "train2d" in
     List.map
       (fun (n : Gen.named) -> (n.Gen.name, n.Gen.matrix))
       (Gen.suite rng ~count:(train_matrix_count ()) ~max_dim ~max_nnz))

let test_corpus_2d =
  lazy
    (let rng = rng_for "test2d" in
     List.map
       (fun (n : Gen.named) -> ("test_" ^ n.Gen.name, n.Gen.matrix))
       (Gen.suite rng ~count:(test_matrix_count ()) ~max_dim ~max_nnz))

let train_corpus_3d =
  lazy
    (let rng = rng_for "train3d" in
     List.map
       (fun (n : Gen.named3) -> (n.Gen.name3, n.Gen.tensor))
       (Gen.tensor3_suite rng ~count:(train_matrix_count ()) ~max_dim:196
          ~max_nnz:8000))

let test_corpus_3d =
  lazy
    (let rng = rng_for "test3d" in
     List.map
       (fun (n : Gen.named3) -> ("test_" ^ n.Gen.name3, n.Gen.tensor))
       (Gen.tensor3_suite rng ~count:(test_matrix_count ()) ~max_dim:196
          ~max_nnz:8000))

type trained = {
  model : Waco.Costmodel.t;
  data : Waco.Dataset.t;
  index : Waco.Tuner.index;
  curve : Waco.Trainer.curve;
  train_seconds : float;
}

let cache : (string, trained) Hashtbl.t = Hashtbl.create 8

let verbose = match Sys.getenv_opt "WACO_QUIET" with Some _ -> false | None -> true

let say fmt = Printf.ksprintf (fun s -> if verbose then Printf.eprintf "[lab] %s\n%!" s) fmt

(* Datasets depend on (algo, machine) but not the extractor kind; cache them
   so the Fig. 15 ablation doesn't regenerate runtimes per extractor. *)
let dataset_cache : (string, Waco.Dataset.t) Hashtbl.t = Hashtbl.create 8

let rec dataset_for rng machine (algo : Algorithm.t) =
  let key = Printf.sprintf "%s/%s" (Algorithm.name algo) machine.Machine.name in
  match Hashtbl.find_opt dataset_cache key with
  | Some d -> d
  | None ->
      let d = dataset_for_uncached rng machine algo in
      Hashtbl.add dataset_cache key d;
      d

and dataset_for_uncached rng machine (algo : Algorithm.t) =
  match algo with
  | Algorithm.Mttkrp _ ->
      Waco.Dataset.of_tensors rng machine algo (Lazy.force train_corpus_3d)
        ~schedules_per_matrix:(schedules_per_matrix ()) ~valid_fraction:0.2
  | Algorithm.Spmv | Algorithm.Spmm _ | Algorithm.Sddmm _ ->
      Waco.Dataset.of_matrices rng machine algo (Lazy.force train_corpus_2d)
        ~schedules_per_matrix:(schedules_per_matrix ()) ~valid_fraction:0.2

(* Train (or fetch) the WACO model for an algorithm on a machine. *)
let trained ?(kind = Waco.Extractor.Waconet) machine (algo : Algorithm.t) =
  let key =
    Printf.sprintf "%s/%s/%s" (Algorithm.name algo) machine.Machine.name
      (Waco.Extractor.kind_name kind)
  in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let rng = rng_for key in
      let t0 = Unix.gettimeofday () in
      say "training %s ..." key;
      let data = dataset_for rng machine algo in
      let model = Waco.Costmodel.create rng ~kind algo in
      let curve =
        Waco.Trainer.train ~lr:2e-3 ~pairs_per_step:24 rng model data
          ~epochs:(Waco.Config.epochs ())
      in
      let index = Waco.Tuner.build_index rng model (Waco.Dataset.all_schedules data) in
      let t = {
        model; data; index; curve;
        train_seconds = Unix.gettimeofday () -. t0;
      } in
      say "trained %s in %.1fs (val_acc %.3f, corpus %d)" key t.train_seconds
        curve.Waco.Trainer.valid_acc.(Array.length curve.Waco.Trainer.valid_acc - 1)
        index.Waco.Tuner.corpus_size;
      Hashtbl.add cache key t;
      t

(* Workload + extractor input for a test case. *)
let case_of_matrix name m =
  (Workload.of_coo ~id:name m, Waco.Extractor.input_of_coo ~id:name m)

let case_of_tensor name t =
  (Workload.of_tensor3 ~id:name t, Waco.Extractor.input_of_tensor3 ~id:name t)

let test_cases (algo : Algorithm.t) =
  match algo with
  | Algorithm.Mttkrp _ ->
      List.map (fun (n, t) -> (n, case_of_tensor n t)) (Lazy.force test_corpus_3d)
  | Algorithm.Spmv | Algorithm.Spmm _ | Algorithm.Sddmm _ ->
      List.map (fun (n, m) -> (n, case_of_matrix n m)) (Lazy.force test_corpus_2d)

let geomean xs =
  match xs with
  | [] -> 1.0
  | _ ->
      exp (List.fold_left (fun acc x -> acc +. log (Float.max 1e-12 x)) 0.0 xs
           /. float_of_int (List.length xs))

(* Tune every test case once per (algo, machine); cached because several
   experiments reuse the same tuning results. *)
type tuned_case = {
  case_name : string;
  wl : Workload.t;
  input : Waco.Extractor.input;
  waco : Waco.Tuner.result;
}

let tuned_cache : (string, tuned_case list) Hashtbl.t = Hashtbl.create 8

let tuned_cases machine (algo : Algorithm.t) =
  let key = Printf.sprintf "%s/%s" (Algorithm.name algo) machine.Machine.name in
  match Hashtbl.find_opt tuned_cache key with
  | Some t -> t
  | None ->
      let { model; index; _ } = trained machine algo in
      let out =
        List.map
          (fun (name, (wl, input)) ->
            { case_name = name; wl; input;
              waco = Waco.Tuner.tune model machine wl input index })
          (test_cases algo)
      in
      Hashtbl.add tuned_cache key out;
      out
