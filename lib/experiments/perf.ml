(* Headline performance results:

   Fig. 13 — per-matrix speedups of WACO over each baseline on SpMM (sorted
   series; we print the distribution plus geomean).
   Table 4 — geomean speedup vs auto-tuning baselines (MKL schedule-only,
   BestFormat format-only) per algorithm.
   Table 5 — geomean speedup vs fixed implementations (FixedCSR, ASpT). *)

open Schedule
open Machine_model

type baseline_kind = B_mkl | B_bestformat | B_fixedcsr | B_aspt

let baseline_name = function
  | B_mkl -> "MKL"
  | B_bestformat -> "BestFormat"
  | B_fixedcsr -> "FixedCSR"
  | B_aspt -> "ASpT"

let supported algo = function
  | B_mkl -> (match algo with Algorithm.Spmv | Algorithm.Spmm _ -> true | _ -> false)
  | B_aspt -> (match algo with Algorithm.Spmm _ | Algorithm.Sddmm _ -> true | _ -> false)
  | B_bestformat | B_fixedcsr -> true

let baseline_time machine wl algo = function
  | B_mkl -> (Baselines.mkl machine wl algo).Baselines.kernel_time
  | B_bestformat -> (Baselines.best_format machine wl algo).Baselines.kernel_time
  | B_fixedcsr -> (Baselines.fixed_csr machine wl algo).Baselines.kernel_time
  | B_aspt -> (Baselines.aspt machine wl algo).Baselines.kernel_time

(* Speedups of WACO over one baseline across the test set. *)
let speedups machine algo kind =
  let cases = Lab.tuned_cases machine algo in
  List.map
    (fun (c : Lab.tuned_case) ->
      baseline_time machine c.Lab.wl algo kind /. c.Lab.waco.Waco.Tuner.best_measured)
    cases

let print_series name xs =
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let pick q = arr.(min (n - 1) (int_of_float (q *. float_of_int (n - 1)))) in
  let below = List.length (List.filter (fun x -> x < 1.0) xs) in
  Printf.printf
    "  vs %-11s geomean %5.2fx | min %5.2fx p25 %5.2fx median %5.2fx p75 %5.2fx max %6.2fx | %d/%d below 1.0\n"
    name (Lab.geomean xs) (pick 0.0) (pick 0.25) (pick 0.5) (pick 0.75) (pick 1.0)
    below n

let run_fig13 () =
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  Printf.printf "\n=== Figure 13: WACO speedup distribution on SpMM (test set) ===\n";
  List.iter
    (fun kind -> print_series (baseline_name kind) (speedups machine algo kind))
    [ B_mkl; B_bestformat; B_fixedcsr; B_aspt ];
  Printf.printf "(paper geomeans: MKL 1.7x, BestFormat 1.2x, FixedCSR 1.3x, ASpT 1.4x)\n"

let run_table4 () =
  let machine = Machine.intel_like in
  Printf.printf "\n=== Table 4: geomean speedup of WACO vs auto-tuners ===\n";
  Printf.printf "%-8s %18s %18s\n" "" "vs Format-only" "vs Schedule-only";
  List.iter
    (fun algo ->
      let fmt_only = Lab.geomean (speedups machine algo B_bestformat) in
      let sched_only =
        if supported algo B_mkl then
          Printf.sprintf "%.2fx" (Lab.geomean (speedups machine algo B_mkl))
        else "Not Impl."
      in
      let fmt_str =
        match algo with
        | Algorithm.Sddmm _ -> "Not Impl." (* paper: no SDDMM auto-tuner baseline *)
        | _ -> Printf.sprintf "%.2fx" fmt_only
      in
      Printf.printf "%-8s %18s %18s\n" (Algorithm.name algo) fmt_str sched_only)
    Lab.algorithms;
  Printf.printf "(paper: SpMV 1.43/2.32, SpMM 1.18/1.68, MTTKRP 1.27/-)\n"

let run_table5 () =
  let machine = Machine.intel_like in
  Printf.printf "\n=== Table 5: geomean speedup of WACO vs fixed implementations ===\n";
  Printf.printf "%-8s %14s %14s\n" "" "vs FixedCSR" "vs ASpT";
  List.iter
    (fun algo ->
      let csr = Printf.sprintf "%.2fx" (Lab.geomean (speedups machine algo B_fixedcsr)) in
      let aspt =
        if supported algo B_aspt then
          Printf.sprintf "%.2fx" (Lab.geomean (speedups machine algo B_aspt))
        else "Not Impl."
      in
      Printf.printf "%-8s %14s %14s\n" (Algorithm.name algo) csr aspt)
    Lab.algorithms;
  Printf.printf "(paper: SpMV 1.54/-, SpMM 1.26/1.36, SDDMM 1.29/1.14, MTTKRP 1.35/-)\n"

let run () =
  run_fig13 ();
  run_table4 ();
  run_table5 ()
