(* Behavioural tests for the cost simulator: the orderings the paper's
   analysis depends on must hold in the model. *)

open Sptensor
open Schedule
open Machine_model

let rng () = Rng.create 909

let machine = Machine.intel_like

let algo = Algorithm.Spmm 256

let t_of wl s = Costsim.runtime machine wl s

let fixed = Superschedule.fixed_default algo

let bcsr b =
  Superschedule.concordant_with_format algo ~splits:[| b; b |]
    ~a_order:
      [| Format_abs.Spec.top_var 0; Format_abs.Spec.top_var 1;
         Format_abs.Spec.bottom_var 0; Format_abs.Spec.bottom_var 1 |]
    ~a_formats:
      [| Format_abs.Levelfmt.U; Format_abs.Levelfmt.C; Format_abs.Levelfmt.U;
         Format_abs.Levelfmt.U |]

let test_positive_and_finite () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:500 ~ncols:500 ~nnz:5000 in
  let wl = Workload.of_coo ~id:"pf" m in
  for _ = 1 to 50 do
    let s = Space.sample r algo ~dims:[| 500; 500 |] in
    let t = t_of wl s in
    Alcotest.(check bool) "positive finite" true (t > 0.0 && Float.is_finite t)
  done

let test_deterministic () =
  let r = rng () in
  let m = Gen.rmat r ~nrows:400 ~ncols:400 ~nnz:4000 in
  let wl = Workload.of_coo ~id:"det" m in
  let s = Space.sample r algo ~dims:[| 400; 400 |] in
  Alcotest.(check (float 0.0)) "deterministic" (t_of wl s) (t_of wl s)

(* Skewed matrices want fine-grained chunks; uniform ones tolerate coarse. *)
let test_skew_prefers_fine_chunks () =
  let r = rng () in
  let skew = Gen.power_law r ~alpha:1.6 ~nrows:2000 ~ncols:2000 ~nnz:60000 in
  let wl = Workload.of_coo ~id:"skew" skew in
  let coarse = t_of wl { fixed with Superschedule.chunk = 256 } in
  let fine = t_of wl { fixed with Superschedule.chunk = 4 } in
  Alcotest.(check bool) "fine chunks beat coarse on skew" true (fine < coarse)

(* A discordant loop order must be penalized (binary search, §3.1). *)
let test_discordant_penalized () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:800 ~ncols:800 ~nnz:12000 in
  let wl = Workload.of_coo ~id:"disc" m in
  let disc = { fixed with Superschedule.compute_order = [| 2; 0; 3; 1 |] } in
  Alcotest.(check bool) "discordant slower" true (t_of wl disc > 2.0 *. t_of wl fixed)

(* More materialized padding can only cost more work: fully dense storage of a
   sparse pattern must be slower than CSR. *)
let test_padding_costs () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:1000 ~ncols:1000 ~nnz:3000 in
  let wl = Workload.of_coo ~id:"pad" m in
  let dense_fmt =
    {
      fixed with
      Superschedule.a_formats =
        [| Format_abs.Levelfmt.U; Format_abs.Levelfmt.U; Format_abs.Levelfmt.U;
           Format_abs.Levelfmt.U |];
    }
  in
  Alcotest.(check bool) "dense storage of sparse pattern slower" true
    (t_of wl dense_fmt > t_of wl fixed)

(* The Fig. 14 heuristic: UCU SpMV vectorizes at b >= 16 on intel-like. *)
let test_simd_threshold () =
  let r = rng () in
  let m = Gen.block_dense r ~block:32 ~nrows:2048 ~ncols:2048 ~nnz:60000 in
  let wl = Workload.of_coo ~id:"simd" m in
  let ucu b =
    Superschedule.concordant_with_format Algorithm.Spmv ~splits:[| b; 1 |]
      ~a_order:
        [| Format_abs.Spec.top_var 0; Format_abs.Spec.top_var 1;
           Format_abs.Spec.bottom_var 0; Format_abs.Spec.bottom_var 1 |]
      ~a_formats:
        [| Format_abs.Levelfmt.U; Format_abs.Levelfmt.C; Format_abs.Levelfmt.U;
           Format_abs.Levelfmt.U |]
  in
  let vec b = (Costsim.estimate machine wl (ucu b)).Costsim.vec_factor in
  Alcotest.(check (float 0.0)) "b=8 partial" 2.0 (vec 8);
  Alcotest.(check (float 0.0)) "b=16 vectorized" 8.0 (vec 16);
  Alcotest.(check (float 0.0)) "amd vectorizes at 4"
    4.0
    (Costsim.estimate Machine.amd_like wl (ucu 4)).Costsim.vec_factor

(* The coupled behaviour of Table 1: on a blocked matrix, BCSR wins only
   with a matched (smaller) chunk size. *)
let test_coupled_format_chunk () =
  let r = rng () in
  let m = Gen.block_dense r ~block:8 ~nrows:2000 ~ncols:2000 ~nnz:300000 in
  let wl = Workload.of_coo ~id:"coupled" m in
  let csr_best =
    List.fold_left min infinity
      (List.map (fun c -> t_of wl { fixed with Superschedule.chunk = c }) [ 1; 4; 16; 64 ])
  in
  let bcsr_best =
    List.fold_left min infinity
      (List.map (fun c -> t_of wl { (bcsr 8) with Superschedule.chunk = c }) [ 1; 4; 16; 64 ])
  in
  Alcotest.(check bool) "tuned bcsr beats tuned csr on blocked matrix" true
    (bcsr_best < csr_best)

(* Parallelizing a size-1 derived variable gives no parallelism. *)
let test_degenerate_parallel_var () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:1000 ~ncols:1000 ~nnz:20000 in
  let wl = Workload.of_coo ~id:"degen" m in
  let serial = { fixed with Superschedule.par_var = Format_abs.Spec.bottom_var 0 } in
  (* split_i = 1 so i0 has size 1 *)
  Alcotest.(check bool) "serial slower than parallel" true
    (t_of wl serial > 2.0 *. t_of wl fixed)

(* Workload slice histograms. *)
let test_workload_slices () =
  let m =
    Coo.of_triplets ~nrows:4 ~ncols:4
      [ (0, 0, 1.); (0, 1, 1.); (1, 0, 1.); (3, 3, 1.) ]
  in
  let wl = Workload.of_coo ~id:"slices" m in
  Alcotest.(check (array int)) "row blocks of 2"
    [| 3; 1 |]
    (Workload.work_per_var_value wl ~dim:0 ~split:2 ~is_top:true);
  Alcotest.(check (array int)) "row mod 2"
    [| 2; 2 |]
    (Workload.work_per_var_value wl ~dim:0 ~split:2 ~is_top:false)

(* Conversion time grows with materialized size. *)
let test_convert_time_positive () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:500 ~ncols:500 ~nnz:5000 in
  let wl = Workload.of_coo ~id:"conv" m in
  Alcotest.(check bool) "positive" true (Costsim.convert_time machine wl fixed > 0.0)

(* Machine configs differ enough for Table 7 to be non-trivial. *)
let test_machines_rank_differently () =
  let r = rng () in
  let m = Gen.block_dense r ~block:16 ~nrows:1500 ~ncols:1500 ~nnz:150000 in
  let wl = Workload.of_coo ~id:"mach" m in
  let candidates =
    List.concat_map
      (fun b -> List.map (fun c -> { (bcsr b) with Superschedule.chunk = c }) [ 1; 16; 256 ])
      [ 2; 8; 16 ]
  in
  let best mc =
    List.fold_left
      (fun (bs, bt) s ->
        let t = Costsim.runtime mc wl s in
        if t < bt then (Some s, t) else (bs, bt))
      (None, infinity) candidates
    |> fst |> Option.get |> Superschedule.key
  in
  (* Not asserting inequality (could legitimately coincide), but both must
     produce valid winners; record the comparison result. *)
  let wi = best Machine.intel_like and wa = best Machine.amd_like in
  Alcotest.(check bool) "winners computed" true (String.length wi > 0 && String.length wa > 0)

let qcheck_threads_help_on_uniform =
  QCheck.Test.make ~name:"parallel beats serial-ish chunk extremes (prop)" ~count:20
    QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 77) in
      let m = Gen.uniform r ~nrows:1500 ~ncols:1500 ~nnz:30000 in
      let wl = Workload.of_coo ~id:(Printf.sprintf "u%d" seed) m in
      (* enormous chunk = all rows on one thread; must not beat chunk 16 *)
      let huge = t_of wl { fixed with Superschedule.chunk = 256 } in
      let ok = t_of wl { fixed with Superschedule.chunk = 16 } in
      ok <= huge *. 1.0001)

let () =
  Alcotest.run "machine"
    [
      ( "costsim",
        [
          Alcotest.test_case "positive finite" `Quick test_positive_and_finite;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "skew prefers fine chunks" `Quick test_skew_prefers_fine_chunks;
          Alcotest.test_case "discordant penalized" `Quick test_discordant_penalized;
          Alcotest.test_case "padding costs" `Quick test_padding_costs;
          Alcotest.test_case "simd threshold" `Quick test_simd_threshold;
          Alcotest.test_case "coupled format+chunk" `Quick test_coupled_format_chunk;
          Alcotest.test_case "degenerate parallel var" `Quick test_degenerate_parallel_var;
          Alcotest.test_case "workload slices" `Quick test_workload_slices;
          Alcotest.test_case "convert time" `Quick test_convert_time_positive;
          Alcotest.test_case "machines differ" `Quick test_machines_rank_differently;
          QCheck_alcotest.to_alcotest qcheck_threads_help_on_uniform;
        ] );
    ]
