(* Baseline tests: each baseline must honour its documented tuning space. *)

open Sptensor
open Schedule
open Machine_model

let rng () = Rng.create 88

let machine = Machine.intel_like

let workload () =
  let r = rng () in
  Workload.of_coo ~id:"bl" (Gen.power_law r ~alpha:1.4 ~nrows:800 ~ncols:800 ~nnz:24000)

let test_fixed_csr_matches_default () =
  let wl = workload () in
  let algo = Algorithm.Spmm 256 in
  let b = Baselines.fixed_csr machine wl algo in
  Alcotest.(check (float 1e-15)) "fixed = default schedule"
    (Costsim.runtime machine wl (Superschedule.fixed_default algo))
    b.Baselines.kernel_time;
  Alcotest.(check (float 0.0)) "no tuning cost" 0.0 b.Baselines.tuning_time

let test_mkl_improves_or_ties_fixed () =
  let wl = workload () in
  List.iter
    (fun algo ->
      let mkl = Baselines.mkl machine wl algo in
      let fixed = Baselines.fixed_csr machine wl algo in
      Alcotest.(check bool) "mkl <= fixed csr (same format, tuned schedule)" true
        (mkl.Baselines.kernel_time <= fixed.Baselines.kernel_time +. 1e-15);
      Alcotest.(check bool) "mkl pays tuning" true (mkl.Baselines.tuning_time > 0.0);
      Alcotest.(check (float 0.0)) "mkl no conversion" 0.0 mkl.Baselines.convert_time)
    [ Algorithm.Spmv; Algorithm.Spmm 256 ]

let test_mkl_rejects_unsupported () =
  let wl = workload () in
  Alcotest.check_raises "no sddmm in mkl"
    (Invalid_argument "Baselines.mkl: MKL supports only SpMV and SpMM") (fun () ->
      ignore (Baselines.mkl machine wl (Algorithm.Sddmm 256)))

let test_best_format_beats_or_ties_csr () =
  let wl = workload () in
  List.iter
    (fun algo ->
      let bf = Baselines.best_format machine wl algo in
      let fixed = Baselines.fixed_csr machine wl algo in
      (* CSR is among the candidates, so BestFormat can never be slower. *)
      Alcotest.(check bool) "bestformat <= fixed" true
        (bf.Baselines.kernel_time <= fixed.Baselines.kernel_time +. 1e-15))
    [ Algorithm.Spmv; Algorithm.Spmm 256; Algorithm.Sddmm 256 ]

let test_best_format_mttkrp_candidates () =
  let r = rng () in
  let t = Gen.tensor3_uniform r ~dim_i:64 ~dim_k:64 ~dim_l:64 ~nnz:2000 in
  let wl = Workload.of_tensor3 ~id:"t3" t in
  let bf = Baselines.best_format machine wl (Algorithm.Mttkrp 16) in
  Alcotest.(check bool) "mttkrp bestformat runs" true (bf.Baselines.kernel_time > 0.0)

let test_aspt_partitions_all_nonzeros () =
  let r = rng () in
  let m = Gen.block_dense r ~block:8 ~nrows:512 ~ncols:512 ~nnz:20000 in
  let wl = Workload.of_coo ~id:"aspt" m in
  let a = Baselines.aspt machine wl (Algorithm.Spmm 256) in
  (* description records tiled_nnz and rest_nnz; they must sum to nnz *)
  Scanf.sscanf a.Baselines.description "panels=%d tiled_nnz=%d rest_nnz=%d"
    (fun _ tiled rest ->
      Alcotest.(check int) "partition covers matrix" wl.Workload.nnz (tiled + rest))

let test_aspt_helps_blocked_matrices () =
  let r = rng () in
  (* dense columns within panels: ASpT's favourable case *)
  let m = Gen.block_dense r ~block:16 ~nrows:1024 ~ncols:1024 ~nnz:150000 in
  let wl = Workload.of_coo ~id:"aspt2" m in
  let a = Baselines.aspt machine wl (Algorithm.Spmm 256) in
  Alcotest.(check bool) "aspt finite positive" true
    (a.Baselines.kernel_time > 0.0 && Float.is_finite a.Baselines.kernel_time)

let test_aspt_rejects_spmv () =
  let wl = workload () in
  Alcotest.check_raises "no spmv in aspt"
    (Invalid_argument "Baselines.aspt: ASpT artifacts cover only SpMM and SDDMM")
    (fun () -> ignore (Baselines.aspt machine wl Algorithm.Spmv))

let test_mkl_naive_coarser_than_tuned () =
  let wl = workload () in
  let algo = Algorithm.Spmm 256 in
  let naive = Baselines.mkl_naive machine wl algo in
  let tuned = Baselines.mkl machine wl algo in
  Alcotest.(check bool) "tuned mkl <= naive mkl" true
    (tuned.Baselines.kernel_time <= naive.Baselines.kernel_time +. 1e-15)

let () =
  Alcotest.run "baselines"
    [
      ( "baselines",
        [
          Alcotest.test_case "fixed csr" `Quick test_fixed_csr_matches_default;
          Alcotest.test_case "mkl improves" `Quick test_mkl_improves_or_ties_fixed;
          Alcotest.test_case "mkl unsupported" `Quick test_mkl_rejects_unsupported;
          Alcotest.test_case "bestformat >= csr" `Quick test_best_format_beats_or_ties_csr;
          Alcotest.test_case "bestformat mttkrp" `Quick test_best_format_mttkrp_candidates;
          Alcotest.test_case "aspt partition" `Quick test_aspt_partitions_all_nonzeros;
          Alcotest.test_case "aspt blocked" `Quick test_aspt_helps_blocked_matrices;
          Alcotest.test_case "aspt unsupported" `Quick test_aspt_rejects_spmv;
          Alcotest.test_case "mkl naive" `Quick test_mkl_naive_coarser_than_tuned;
        ] );
    ]
