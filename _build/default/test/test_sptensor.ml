(* Unit and property tests for the sparse-tensor substrate. *)

open Sptensor

let rng () = Rng.create 12345

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independence () =
  let parent = Rng.create 7 in
  let c1 = Rng.split parent in
  let x1 = Rng.int c1 1000000 in
  let parent2 = Rng.create 7 in
  let c1' = Rng.split parent2 in
  Alcotest.(check int) "split deterministic" x1 (Rng.int c1' 1000000)

let test_rng_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0);
    let y = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "int_in in range" true (y >= -5 && y <= 5)
  done

let test_rng_permutation () =
  let r = rng () in
  let p = Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_categorical () =
  let r = rng () in
  for _ = 1 to 50 do
    Alcotest.(check int) "categorical deterministic" 2
      (Rng.categorical r [| 0.0; 0.0; 5.0; 0.0 |])
  done

(* --- Coo --- *)

let triple_t = Alcotest.(triple int int (float 1e-9))

let test_coo_of_triplets_sorts_and_sums () =
  let m = Coo.of_triplets ~nrows:3 ~ncols:3 [ (2, 1, 1.0); (0, 0, 2.0); (2, 1, 3.0) ] in
  Alcotest.(check int) "nnz after dedup" 2 (Coo.nnz m);
  Alcotest.(check (list triple_t))
    "sorted and summed"
    [ (0, 0, 2.0); (2, 1, 4.0) ]
    (Coo.to_triplets m)

let test_coo_out_of_bounds () =
  Alcotest.check_raises "oob raises"
    (Invalid_argument "Coo.of_triplets: (3,0) out of 3x3") (fun () ->
      ignore (Coo.of_triplets ~nrows:3 ~ncols:3 [ (3, 0, 1.0) ]))

let test_coo_transpose_involution () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:40 ~ncols:30 ~nnz:200 in
  Alcotest.(check bool) "transpose twice = id" true
    (Coo.approx_equal (Coo.transpose (Coo.transpose m)) m)

let test_coo_dense_roundtrip () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:20 ~ncols:25 ~nnz:80 in
  Alcotest.(check bool) "to_dense/of_dense roundtrip" true
    (Coo.approx_equal (Coo.of_dense (Coo.to_dense m)) m)

let test_coo_row_ptr () =
  let m = Coo.of_triplets ~nrows:3 ~ncols:4 [ (0, 1, 1.); (0, 3, 1.); (2, 0, 1.) ] in
  Alcotest.(check (array int)) "row_ptr" [| 0; 2; 2; 3 |] (Coo.row_ptr m)

(* --- Csr --- *)

let test_csr_roundtrip () =
  let r = rng () in
  let m = Gen.power_law r ~alpha:1.3 ~nrows:50 ~ncols:60 ~nnz:300 in
  Alcotest.(check bool) "coo->csr->coo" true
    (Coo.approx_equal (Csr.to_coo (Csr.of_coo m)) m)

let test_csr_spmv_vs_dense () =
  let r = rng () in
  let m = Gen.banded r ~half_bw:4 ~nrows:30 ~ncols:30 ~nnz:150 in
  let x = Dense.vec_random r 30 in
  let d = Coo.to_dense m in
  let expected =
    Array.init 30 (fun i ->
        let acc = ref 0.0 in
        for j = 0 to 29 do
          acc := !acc +. (Dense.get d i j *. x.(j))
        done;
        !acc)
  in
  Alcotest.(check bool) "spmv matches dense" true
    (Dense.vec_approx_equal ~eps:1e-9 (Csr.spmv (Csr.of_coo m) x) expected)

let test_csr_sddmm_pattern () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:12 ~ncols:14 ~nnz:40 in
  let b = Dense.mat_random r 12 5 in
  let c = Dense.mat_random r 5 14 in
  let d = Csr.sddmm (Csr.of_coo m) b c in
  Alcotest.(check int) "sddmm keeps pattern" (Coo.nnz m) (Csr.nnz d)

(* --- Tensor3 --- *)

let test_tensor3_dedup () =
  let t =
    Tensor3.of_quads ~dim_i:4 ~dim_k:4 ~dim_l:4
      [ (1, 2, 3, 1.0); (1, 2, 3, 2.0); (0, 0, 0, 1.0) ]
  in
  Alcotest.(check int) "duplicates summed" 2 (Tensor3.nnz t)

let test_tensor3_mttkrp_vs_manual () =
  let r = rng () in
  let t = Gen.tensor3_uniform r ~dim_i:8 ~dim_k:6 ~dim_l:5 ~nnz:40 in
  let b = Dense.mat_random r 6 3 in
  let c = Dense.mat_random r 5 3 in
  let d = Tensor3.mttkrp t b c in
  let expected = Dense.mat_create 8 3 in
  Tensor3.iter
    (fun i k l v ->
      for j = 0 to 2 do
        Dense.add_to expected i j (v *. Dense.get b k j *. Dense.get c l j)
      done)
    t;
  Alcotest.(check bool) "mttkrp" true (Dense.mat_approx_equal ~eps:1e-9 d expected)

let test_tensor3_flatten_nnz () =
  let r = rng () in
  let t = Gen.tensor3_uniform r ~dim_i:10 ~dim_k:10 ~dim_l:10 ~nnz:100 in
  Alcotest.(check int) "flatten preserves nnz" (Tensor3.nnz t)
    (Coo.nnz (Tensor3.flatten t))

(* --- Stats --- *)

let test_stats_basic () =
  let m = Coo.of_triplets ~nrows:4 ~ncols:4 [ (0, 0, 1.); (0, 1, 1.); (1, 1, 1.) ] in
  let s = Stats.compute m in
  Alcotest.(check int) "nnz" 3 s.Stats.nnz;
  Alcotest.(check int) "row max" 2 s.Stats.row_nnz_max;
  Alcotest.(check int) "empty rows" 2 s.Stats.empty_rows

let test_stats_block_full () =
  let m =
    Coo.of_triplets ~nrows:4 ~ncols:4 [ (0, 0, 1.); (0, 1, 1.); (1, 0, 1.); (1, 1, 1.) ]
  in
  let b = Stats.block_stats m ~bi:2 ~bk:2 in
  Alcotest.(check int) "one block" 1 b.Stats.nonempty_blocks;
  Alcotest.(check (float 1e-9)) "full" 1.0 b.Stats.avg_fill

let test_stats_chunk_work () =
  let work = Stats.chunk_work [| 1; 2; 3; 4; 5 |] ~chunk:2 in
  Alcotest.(check (array int)) "chunked sums" [| 3; 7; 5 |] work

(* --- Gen --- *)

let test_gen_shapes () =
  let r = rng () in
  List.iter
    (fun family ->
      let m = Gen.generate r family ~nrows:100 ~ncols:100 ~nnz:500 in
      Alcotest.(check bool)
        (Gen.family_name family ^ " nonempty")
        true
        (Coo.nnz m > 0 && m.Coo.nrows <= 100 && m.Coo.ncols <= 100))
    (Array.to_list Gen.all_families)

let test_gen_block_alignment () =
  let r = rng () in
  let m = Gen.block_dense r ~block:4 ~nrows:64 ~ncols:64 ~nnz:256 in
  let b = Stats.block_stats m ~bi:4 ~bk:4 in
  Alcotest.(check (float 0.01)) "blocks fully filled" 1.0 b.Stats.avg_fill

let test_gen_resize_bounds () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:100 ~ncols:100 ~nnz:400 in
  let m' = Gen.resize r m ~nrows:37 ~ncols:53 in
  Alcotest.(check bool) "resized in bounds" true
    (m'.Coo.nrows = 37 && m'.Coo.ncols = 53 && Coo.nnz m' > 0);
  Coo.iter (fun i j _ -> assert (i < 37 && j < 53)) m'

let test_gen_suite_determinism () =
  let s1 = Gen.suite (Rng.create 5) ~count:4 ~max_dim:128 ~max_nnz:500 in
  let s2 = Gen.suite (Rng.create 5) ~count:4 ~max_dim:128 ~max_nnz:500 in
  List.iter2
    (fun (a : Gen.named) (b : Gen.named) ->
      Alcotest.(check string) "names equal" a.Gen.name b.Gen.name;
      Alcotest.(check bool) "matrices equal" true (Coo.equal a.Gen.matrix b.Gen.matrix))
    s1 s2

(* --- Mmio --- *)

let test_mmio_roundtrip () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:30 ~ncols:40 ~nnz:100 in
  let path = Filename.temp_file "waco" ".mtx" in
  Mmio.write_coo path m;
  let m' = Mmio.read_coo path in
  Sys.remove path;
  Alcotest.(check bool) "mmio roundtrip" true (Coo.approx_equal m m')

(* --- qcheck properties --- *)

let qcheck_coo_roundtrip =
  QCheck.Test.make ~name:"coo dense roundtrip (prop)" ~count:50 QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 1) in
      let nrows = 1 + Rng.int r 30 and ncols = 1 + Rng.int r 30 in
      let nnz = min (nrows * ncols / 2) (1 + Rng.int r 100) in
      let nnz = max 1 nnz in
      let m = Gen.uniform r ~nrows ~ncols ~nnz in
      Coo.approx_equal (Coo.of_dense (Coo.to_dense m)) m)

let qcheck_transpose_preserves_nnz =
  QCheck.Test.make ~name:"transpose preserves nnz (prop)" ~count:50 QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 1) in
      let m = Gen.power_law r ~alpha:1.2 ~nrows:40 ~ncols:40 ~nnz:150 in
      Coo.nnz (Coo.transpose m) = Coo.nnz m)

let qcheck_chunk_work_total =
  QCheck.Test.make ~name:"chunk_work conserves total (prop)" ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(1 -- 50) (int_range 0 9)))
    (fun (chunk, counts) ->
      let arr = Array.of_list counts in
      let work = Stats.chunk_work arr ~chunk in
      Array.fold_left ( + ) 0 work = Array.fold_left ( + ) 0 arr)

let () =
  Alcotest.run "sptensor"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "categorical" `Quick test_rng_categorical;
        ] );
      ( "coo",
        [
          Alcotest.test_case "of_triplets sorts+sums" `Quick
            test_coo_of_triplets_sorts_and_sums;
          Alcotest.test_case "out of bounds" `Quick test_coo_out_of_bounds;
          Alcotest.test_case "transpose involution" `Quick test_coo_transpose_involution;
          Alcotest.test_case "dense roundtrip" `Quick test_coo_dense_roundtrip;
          Alcotest.test_case "row_ptr" `Quick test_coo_row_ptr;
        ] );
      ( "csr",
        [
          Alcotest.test_case "roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "spmv vs dense" `Quick test_csr_spmv_vs_dense;
          Alcotest.test_case "sddmm pattern" `Quick test_csr_sddmm_pattern;
        ] );
      ( "tensor3",
        [
          Alcotest.test_case "dedup" `Quick test_tensor3_dedup;
          Alcotest.test_case "mttkrp vs manual" `Quick test_tensor3_mttkrp_vs_manual;
          Alcotest.test_case "flatten nnz" `Quick test_tensor3_flatten_nnz;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "block full" `Quick test_stats_block_full;
          Alcotest.test_case "chunk work" `Quick test_stats_chunk_work;
        ] );
      ( "gen",
        [
          Alcotest.test_case "all families" `Quick test_gen_shapes;
          Alcotest.test_case "block alignment" `Quick test_gen_block_alignment;
          Alcotest.test_case "resize bounds" `Quick test_gen_resize_bounds;
          Alcotest.test_case "suite determinism" `Quick test_gen_suite_determinism;
        ] );
      ("mmio", [ Alcotest.test_case "roundtrip" `Quick test_mmio_roundtrip ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_coo_roundtrip; qcheck_transpose_preserves_nnz; qcheck_chunk_work_total ]
      );
    ]
