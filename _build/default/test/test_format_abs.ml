(* Tests for the format abstraction: specs, packing, storage accounting. *)

open Sptensor
open Format_abs

let rng () = Rng.create 777

let u = Levelfmt.U and c = Levelfmt.C

(* --- Spec --- *)

let test_spec_validate_rejects_bad_order () =
  Alcotest.check_raises "non-permutation order"
    (Invalid_argument "Spec: order is not a permutation of the derived variables")
    (fun () ->
      ignore
        (Spec.make ~dims:[| 4; 4 |] ~splits:[| 1; 1 |] ~order:[| 0; 0; 2; 3 |]
           ~formats:[| u; c; u; u |]))

let test_spec_var_sizes () =
  let s = Spec.bcsr ~dims:[| 10; 8 |] ~bi:4 ~bk:2 in
  Alcotest.(check int) "i1 size = ceil(10/4)" 3 (Spec.var_size s (Spec.top_var 0));
  Alcotest.(check int) "i0 size" 4 (Spec.var_size s (Spec.bottom_var 0));
  Alcotest.(check int) "k1 size" 4 (Spec.var_size s (Spec.top_var 1));
  Alcotest.(check int) "k0 size" 2 (Spec.var_size s (Spec.bottom_var 1))

let test_spec_names () =
  Alcotest.(check string) "csr name" "UC" (Spec.name (Spec.csr_like ~dims:[| 8; 8 |]));
  Alcotest.(check string) "bcsr name" "UCUU"
    (Spec.name (Spec.bcsr ~dims:[| 8; 8 |] ~bi:2 ~bk:2));
  Alcotest.(check string) "csf name" "CCC" (Spec.name (Spec.csf ~dims:[| 4; 4; 4 |]))

let test_spec_discordance () =
  let s = Spec.csr_like ~dims:[| 8; 8 |] in
  Alcotest.(check int) "concordant" 0
    (Spec.discordant_levels s ~compute_order:s.Spec.order);
  (* swapping i1 and k1 makes both significant levels discordant *)
  let swapped = [| Spec.top_var 1; Spec.top_var 0; Spec.bottom_var 0; Spec.bottom_var 1 |] in
  Alcotest.(check int) "swapped tops" 2 (Spec.discordant_levels s ~compute_order:swapped)

let test_spec_discordance_ignores_degenerate () =
  (* size-1 bottoms moved around should not count *)
  let s = Spec.csr_like ~dims:[| 8; 8 |] in
  let weird = [| Spec.bottom_var 0; Spec.top_var 0; Spec.top_var 1; Spec.bottom_var 1 |] in
  Alcotest.(check int) "degenerate reorder concordant" 0
    (Spec.discordant_levels s ~compute_order:weird)

(* --- Packed --- *)

let small_matrix () =
  Coo.of_triplets ~nrows:4 ~ncols:6
    [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 5, 4.0); (3, 0, 5.0); (3, 3, 6.0) ]

let pack_ok spec m =
  match Packed.of_coo spec m with Ok p -> p | Error e -> Alcotest.fail e

let test_pack_csr_structure () =
  let m = small_matrix () in
  let p = pack_ok (Spec.csr_like ~dims:[| 4; 6 |]) m in
  (* CSR: level 0 dense of 4 rows, level 1 compressed with nnz coords *)
  (match p.Packed.levels.(0) with
  | Packed.Dense size -> Alcotest.(check int) "rows level" 4 size
  | Packed.Compressed _ -> Alcotest.fail "expected dense rows");
  (match p.Packed.levels.(1) with
  | Packed.Compressed { pos; crd } ->
      Alcotest.(check (array int)) "pos" [| 0; 2; 3; 4; 6 |] pos;
      Alcotest.(check (array int)) "crd" [| 0; 2; 1; 5; 0; 3 |] crd
  | Packed.Dense _ -> Alcotest.fail "expected compressed cols");
  Alcotest.(check int) "vals = nnz for CSR" 6 (Array.length p.Packed.vals)

let test_pack_roundtrip_csr () =
  let m = small_matrix () in
  let p = pack_ok (Spec.csr_like ~dims:[| 4; 6 |]) m in
  Alcotest.(check bool) "roundtrip" true (Coo.approx_equal (Packed.to_coo p) m)

let test_pack_bcsr_padding () =
  let m = small_matrix () in
  let p = pack_ok (Spec.bcsr ~dims:[| 4; 6 |] ~bi:2 ~bk:2) m in
  (* nonzero blocks: (0,0),(0,1),(1,2),(1,0),(1,1) -> 5 blocks x 4 slots *)
  Alcotest.(check int) "padded vals" 20 (Array.length p.Packed.vals);
  Alcotest.(check bool) "roundtrip with padding" true
    (Coo.approx_equal (Packed.to_coo p) m)

let test_pack_budget () =
  let m = small_matrix () in
  let all_dense =
    Spec.make ~dims:[| 4; 6 |] ~splits:[| 1; 1 |]
      ~order:(Spec.csr_like ~dims:[| 4; 6 |]).Spec.order
      ~formats:[| u; u; u; u |]
  in
  (match Packed.of_coo ~budget:10 all_dense m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected budget error");
  match Packed.of_coo ~budget:100 all_dense m with
  | Ok p -> Alcotest.(check int) "fully dense vals" 24 (Array.length p.Packed.vals)
  | Error e -> Alcotest.fail e

let test_pack_duplicate_rejected () =
  let entries = [| ([| 0; 0 |], 1.0); ([| 0; 0 |], 2.0) |] in
  match Packed.pack (Spec.csr_like ~dims:[| 2; 2 |]) entries with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected duplicate error"

let test_pack_column_major_order () =
  let m = small_matrix () in
  let p = pack_ok (Spec.csc ~dims:[| 4; 6 |]) m in
  Alcotest.(check bool) "csc roundtrip" true (Coo.approx_equal (Packed.to_coo p) m)

let test_pack_tensor3_csf () =
  let r = rng () in
  let t = Gen.tensor3_uniform r ~dim_i:6 ~dim_k:5 ~dim_l:4 ~nnz:20 in
  let spec = Spec.csf ~dims:[| 6; 5; 4 |] in
  match Packed.of_tensor3 spec t with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "CSF vals = nnz" (Tensor3.nnz t) (Array.length p.Packed.vals);
      let quads = Packed.to_quads p in
      Alcotest.(check int) "quads preserved" (Tensor3.nnz t) (List.length quads)

(* --- Storage model vs physical packing --- *)

let storage_matches spec m =
  let a = Storage_model.analyze_coo spec m in
  match Packed.of_coo ~budget:(1 lsl 22) spec m with
  | Error _ -> true (* analytic model also prices what we refuse to pack *)
  | Ok p ->
      let st = Packed.storage_of p in
      st.Packed.nvals = int_of_float a.Storage_model.nvals
      && st.Packed.crd_ints = a.Storage_model.crd_ints
      && st.Packed.pos_ints = a.Storage_model.pos_ints

let test_storage_analytic_csr () =
  let m = small_matrix () in
  let a = Storage_model.analyze_coo (Spec.csr_like ~dims:[| 4; 6 |]) m in
  Alcotest.(check (float 1e-9)) "nvals" 6.0 a.Storage_model.nvals;
  Alcotest.(check int) "crd" 6 a.Storage_model.crd_ints;
  Alcotest.(check int) "pos = nrows+1" 5 a.Storage_model.pos_ints;
  Alcotest.(check (float 1e-9)) "fill" 1.0 a.Storage_model.fill_ratio

let qcheck_storage_consistency =
  QCheck.Test.make ~name:"analytic storage = physical storage (prop)" ~count:60
    QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 11) in
      let m = Gen.uniform r ~nrows:50 ~ncols:40 ~nnz:200 in
      let s = Schedule.Space.sample r (Schedule.Algorithm.Spmm 4) ~dims:[| 50; 40 |] in
      let spec = Schedule.Superschedule.to_spec s ~dims:[| 50; 40 |] in
      storage_matches spec m)

let qcheck_pack_roundtrip =
  QCheck.Test.make ~name:"pack/unpack roundtrip over random formats (prop)" ~count:60
    QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 23) in
      let m = Gen.clustered r ~cluster:6 ~nrows:60 ~ncols:60 ~nnz:150 in
      let s = Schedule.Space.sample r (Schedule.Algorithm.Spmm 4) ~dims:[| 60; 60 |] in
      let spec = Schedule.Superschedule.to_spec s ~dims:[| 60; 60 |] in
      match Packed.of_coo ~budget:(1 lsl 22) spec m with
      | Error _ -> true
      | Ok p -> Coo.approx_equal (Packed.to_coo p) m)

let qcheck_fill_ratio_bounds =
  QCheck.Test.make ~name:"fill ratio in (0,1] (prop)" ~count:60 QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 37) in
      let m = Gen.banded r ~half_bw:3 ~nrows:64 ~ncols:64 ~nnz:200 in
      let s = Schedule.Space.sample r (Schedule.Algorithm.Spmm 4) ~dims:[| 64; 64 |] in
      let spec = Schedule.Superschedule.to_spec s ~dims:[| 64; 64 |] in
      let a = Storage_model.analyze_coo spec m in
      a.Storage_model.fill_ratio > 0.0 && a.Storage_model.fill_ratio <= 1.0 +. 1e-9)

let () =
  Alcotest.run "format_abs"
    [
      ( "spec",
        [
          Alcotest.test_case "validate order" `Quick test_spec_validate_rejects_bad_order;
          Alcotest.test_case "var sizes" `Quick test_spec_var_sizes;
          Alcotest.test_case "names" `Quick test_spec_names;
          Alcotest.test_case "discordance" `Quick test_spec_discordance;
          Alcotest.test_case "discordance degenerate" `Quick
            test_spec_discordance_ignores_degenerate;
        ] );
      ( "packed",
        [
          Alcotest.test_case "csr structure" `Quick test_pack_csr_structure;
          Alcotest.test_case "csr roundtrip" `Quick test_pack_roundtrip_csr;
          Alcotest.test_case "bcsr padding" `Quick test_pack_bcsr_padding;
          Alcotest.test_case "budget" `Quick test_pack_budget;
          Alcotest.test_case "duplicates rejected" `Quick test_pack_duplicate_rejected;
          Alcotest.test_case "csc roundtrip" `Quick test_pack_column_major_order;
          Alcotest.test_case "tensor3 csf" `Quick test_pack_tensor3_csf;
        ] );
      ( "storage",
        Alcotest.test_case "analytic csr" `Quick test_storage_analytic_csr
        :: List.map QCheck_alcotest.to_alcotest
             [ qcheck_storage_consistency; qcheck_pack_roundtrip; qcheck_fill_ratio_bounds ]
      );
    ]
