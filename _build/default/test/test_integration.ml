(* End-to-end integration tests: the full WACO pipeline (dataset -> training
   -> KNN graph -> ANNS tuning -> measured winner) against the baselines, at
   miniature scale.  These are the "does the whole thing hang together" tests;
   the per-module suites cover the parts. *)

open Sptensor
open Schedule
open Machine_model

let machine = Machine.intel_like

let algo = Algorithm.Spmm 256

(* A miniature lab: a corpus biased to blocked + skewed matrices so a small
   training run can learn the structure. *)
let build_pipeline seed =
  let r = Rng.create seed in
  let mats =
    List.init 14 (fun i ->
        let name = Printf.sprintf "im%d" i in
        let m =
          match i mod 3 with
          | 0 -> Gen.block_dense r ~block:8 ~nrows:768 ~ncols:768 ~nnz:40000
          | 1 -> Gen.power_law r ~alpha:1.5 ~nrows:768 ~ncols:768 ~nnz:30000
          | _ -> Gen.uniform r ~nrows:768 ~ncols:768 ~nnz:25000
        in
        (name, m))
  in
  let data =
    Waco.Dataset.of_matrices r machine algo mats ~schedules_per_matrix:24
      ~valid_fraction:0.2
  in
  let model = Waco.Costmodel.create r algo in
  let curve = Waco.Trainer.train ~lr:2e-3 ~pairs_per_step:20 r model data ~epochs:10 in
  let index = Waco.Tuner.build_index r model (Waco.Dataset.all_schedules data) in
  (r, model, index, curve)

let pipeline = lazy (build_pipeline 31415)

let test_training_learned_something () =
  let _, _, _, curve = Lazy.force pipeline in
  let accs = curve.Waco.Trainer.valid_acc in
  let final = accs.(Array.length accs - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "final val pair accuracy %.3f >= 0.7" final)
    true (final >= 0.7)

let tune_case r model index name m =
  ignore r;
  let wl = Workload.of_coo ~id:name m in
  let input = Waco.Extractor.input_of_coo ~id:name m in
  let res = Waco.Tuner.tune model machine wl input index in
  (wl, res)

let test_waco_beats_fixed_csr_on_blocked () =
  let r, model, index, _ = Lazy.force pipeline in
  let m = Gen.block_dense (Rng.create 99) ~block:8 ~nrows:900 ~ncols:900 ~nnz:60000 in
  let wl, res = tune_case r model index "itest-block" m in
  let csr = (Baselines.fixed_csr machine wl algo).Baselines.kernel_time in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2fx >= 1.0" (csr /. res.Waco.Tuner.best_measured))
    true
    (res.Waco.Tuner.best_measured <= csr *. 1.0001)

let test_waco_close_to_corpus_oracle () =
  let r, model, index, _ = Lazy.force pipeline in
  let m = Gen.power_law (Rng.create 123) ~alpha:1.5 ~nrows:800 ~ncols:800 ~nnz:35000 in
  let wl, res = tune_case r model index "itest-skew" m in
  (* Oracle over a 150-sample subspace: WACO's measured winner should be
     within 2x of it (the paper's top-10-then-measure gives near-oracle). *)
  let oracle =
    List.fold_left
      (fun acc s -> Float.min acc (Costsim.runtime machine wl s))
      infinity
      (Space.sample_distinct (Rng.create 7) algo ~dims:wl.Workload.dims ~count:150)
  in
  Alcotest.(check bool)
    (Printf.sprintf "waco %.2e within 2x of oracle %.2e" res.Waco.Tuner.best_measured
       oracle)
    true
    (res.Waco.Tuner.best_measured <= 2.0 *. oracle)

let test_anns_more_efficient_than_random_probing () =
  let r, model, index, _ = Lazy.force pipeline in
  let m = Gen.block_dense (Rng.create 5) ~block:8 ~nrows:700 ~ncols:700 ~nnz:30000 in
  ignore r;
  let wl = Workload.of_coo ~id:"itest-anns" m in
  let input = Waco.Extractor.input_of_coo ~id:"itest-anns" m in
  let res = Waco.Tuner.tune model machine wl input index in
  (* ANNS touches a small fraction of the corpus. *)
  Alcotest.(check bool)
    (Printf.sprintf "evals %d < corpus %d" res.Waco.Tuner.cost_evals
       index.Waco.Tuner.corpus_size)
    true
    (res.Waco.Tuner.cost_evals < index.Waco.Tuner.corpus_size / 2)

(* The chosen schedule must also be *executable*: pack the matrix with it and
   check numerics against the CSR reference (ties the tuner to the real
   kernels, not just the simulator). *)
let test_tuned_schedule_executes_correctly () =
  let r, model, index, _ = Lazy.force pipeline in
  ignore r;
  let rng = Rng.create 2718 in
  let m = Gen.uniform rng ~nrows:300 ~ncols:300 ~nnz:4000 in
  let wl = Workload.of_coo ~id:"itest-exec" m in
  let input = Waco.Extractor.input_of_coo ~id:"itest-exec" m in
  let res = Waco.Tuner.tune model machine wl input index in
  let b = Dense.mat_random rng 300 6 in
  let expected = Csr.spmm (Csr.of_coo m) b in
  (* Execute with a small dense dimension for test speed; the format part of
     the schedule is what is being exercised. *)
  match Exec_engine.Kernels.pack_for res.Waco.Tuner.best m with
  | Error e -> Alcotest.fail ("tuned schedule unpackable: " ^ e)
  | Ok packed ->
      Alcotest.(check bool) "tuned format executes correctly" true
        (Dense.mat_approx_equal ~eps:1e-9 (Exec_engine.Kernels.spmm packed b) expected)

(* MTTKRP end-to-end at tiny scale: dataset over 3-D tensors, train, tune. *)
let test_mttkrp_pipeline () =
  let r = Rng.create 112 in
  let algo3 = Algorithm.Mttkrp 16 in
  let tensors =
    List.init 6 (fun i ->
        ( Printf.sprintf "t%d" i,
          if i mod 2 = 0 then Gen.tensor3_blocked r ~block:2 ~dim_i:96 ~dim_k:96 ~dim_l:96 ~nnz:3000
          else Gen.tensor3_uniform r ~dim_i:96 ~dim_k:96 ~dim_l:96 ~nnz:3000 ))
  in
  let data =
    Waco.Dataset.of_tensors r machine algo3 tensors ~schedules_per_matrix:12
      ~valid_fraction:0.3
  in
  let model = Waco.Costmodel.create r algo3 in
  ignore (Waco.Trainer.train ~lr:2e-3 r model data ~epochs:3);
  let index = Waco.Tuner.build_index r model (Waco.Dataset.all_schedules data) in
  let t = Gen.tensor3_blocked (Rng.create 9) ~block:2 ~dim_i:80 ~dim_k:80 ~dim_l:80 ~nnz:2500 in
  let wl = Workload.of_tensor3 ~id:"t3-test" t in
  let input = Waco.Extractor.input_of_tensor3 ~id:"t3-test" t in
  let res = Waco.Tuner.tune ~k:5 model machine wl input index in
  Alcotest.(check bool) "mttkrp tuner produced a schedule" true
    (res.Waco.Tuner.best_measured > 0.0);
  Superschedule.validate res.Waco.Tuner.best

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "training learns" `Slow test_training_learned_something;
          Alcotest.test_case "beats fixed csr (blocked)" `Slow
            test_waco_beats_fixed_csr_on_blocked;
          Alcotest.test_case "close to oracle" `Slow test_waco_close_to_corpus_oracle;
          Alcotest.test_case "anns efficiency" `Slow test_anns_more_efficient_than_random_probing;
          Alcotest.test_case "tuned schedule executes" `Slow
            test_tuned_schedule_executes_correctly;
          Alcotest.test_case "mttkrp pipeline" `Slow test_mttkrp_pipeline;
        ] );
    ]
