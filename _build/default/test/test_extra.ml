(* Second-layer behavioural tests: cross-module equivalences and regression
   tests for the specific paper stories the simulator must price. *)

open Sptensor
open Schedule
open Machine_model

let rng () = Rng.create 5150

(* --- exec: algebraic cross-checks --- *)

(* SpMM with a 1-column dense operand must equal SpMV. *)
let test_spmm_1col_equals_spmv () =
  let r = rng () in
  let m = Gen.rmat r ~nrows:64 ~ncols:64 ~nnz:400 in
  let x = Dense.vec_random r 64 in
  let b = { Dense.rows = 64; cols = 1; data = Array.copy x } in
  let spec = Format_abs.Spec.bcsr ~dims:[| 64; 64 |] ~bi:4 ~bk:4 in
  let p = match Format_abs.Packed.of_coo spec m with Ok p -> p | Error e -> failwith e in
  let y = Exec_engine.Kernels.spmv p x in
  let c = Exec_engine.Kernels.spmm p b in
  Alcotest.(check bool) "spmm(1 col) = spmv" true
    (Dense.vec_approx_equal ~eps:1e-12 y c.Dense.data)

(* SDDMM with all-ones dense operands scales A by |k|. *)
let test_sddmm_ones_scales () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:30 ~ncols:30 ~nnz:100 in
  let ones rows cols = Dense.mat_init rows cols (fun _ _ -> 1.0) in
  let spec = Format_abs.Spec.csr_like ~dims:[| 30; 30 |] in
  let p = match Format_abs.Packed.of_coo spec m with Ok p -> p | Error e -> failwith e in
  let d = Exec_engine.Kernels.sddmm p (ones 30 5) (ones 5 30) in
  let expected =
    Coo.of_triplets ~nrows:30 ~ncols:30
      (List.map (fun (i, j, v) -> (i, j, 5.0 *. v)) (Coo.to_triplets m))
  in
  Alcotest.(check bool) "sddmm(ones) = 5*A" true (Coo.approx_equal ~eps:1e-9 d expected)

(* MTTKRP with dim_l = 1 and all-ones C degenerates to SpMM over the (i,k)
   flattening. *)
let test_mttkrp_degenerate_spmm () =
  let r = rng () in
  let quads =
    List.init 60 (fun _ -> (Rng.int r 20, Rng.int r 18, 0, Rng.float_in r 0.1 1.0))
  in
  let t = Tensor3.of_quads ~dim_i:20 ~dim_k:18 ~dim_l:1 quads in
  let b = Dense.mat_random r 18 4 in
  let ones = Dense.mat_init 1 4 (fun _ _ -> 1.0) in
  let spec = Format_abs.Spec.csf ~dims:[| 20; 18; 1 |] in
  let p = match Format_abs.Packed.of_tensor3 spec t with Ok p -> p | Error e -> failwith e in
  let d = Exec_engine.Kernels.mttkrp p b ones in
  let flat2d =
    Coo.of_triplets ~nrows:20 ~ncols:18
      (List.map (fun (i, k, _, v) -> (i, k, v)) (Tensor3.to_quads t))
  in
  let expected = Csr.spmm (Csr.of_coo flat2d) b in
  Alcotest.(check bool) "degenerate mttkrp = spmm" true
    (Dense.mat_approx_equal ~eps:1e-9 d expected)

(* --- machine: paper-story regressions --- *)

(* The sparsine story (§5.2.1): on a large scattered matrix whose dense
   operand exceeds the LLC, a sparse-block (UUC) format with a large column
   split beats tuned CSR. *)
let test_sparse_block_beats_csr_on_scattered () =
  let r = rng () in
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let m = Gen.sparsine_like r in
  let wl = Workload.of_coo ~id:"sparsine-story" m in
  let fixed = Superschedule.fixed_default algo in
  let csr_best =
    List.fold_left Float.min infinity
      (List.map
         (fun c -> Costsim.runtime machine wl { fixed with Superschedule.chunk = c })
         [ 1; 4; 16; 64 ])
  in
  let uuc ~bi ~bk =
    Superschedule.concordant_with_format algo ~splits:[| bi; bk |]
      ~a_order:
        [| Format_abs.Spec.top_var 0; Format_abs.Spec.top_var 1;
           Format_abs.Spec.bottom_var 0; Format_abs.Spec.bottom_var 1 |]
      ~a_formats:
        [| (if bi > 1 then Format_abs.Levelfmt.C else Format_abs.Levelfmt.U);
           Format_abs.Levelfmt.U; Format_abs.Levelfmt.C; Format_abs.Levelfmt.C |]
  in
  let uuc_best =
    List.fold_left Float.min infinity
      (List.concat_map
         (fun (bi, bk) ->
           List.map
             (fun c -> Costsim.runtime machine wl { (uuc ~bi ~bk) with Superschedule.chunk = c })
             [ 1; 4; 16 ])
         [ (32, 256); (16, 512); (32, 512) ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "uuc %.2e < csr %.2e" uuc_best csr_best)
    true (uuc_best < csr_best)

(* The TSOPF story (§2.1): on a dense-blocked matrix, tuned BCSR beats tuned
   CSR. *)
let test_bcsr_beats_csr_on_tsopf () =
  let r = rng () in
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let m = Gen.tsopf_like r in
  let wl = Workload.of_coo ~id:"tsopf-story" m in
  let fixed = Superschedule.fixed_default algo in
  let bcsr =
    Superschedule.concordant_with_format algo ~splits:[| 8; 8 |]
      ~a_order:
        [| Format_abs.Spec.top_var 0; Format_abs.Spec.top_var 1;
           Format_abs.Spec.bottom_var 0; Format_abs.Spec.bottom_var 1 |]
      ~a_formats:
        [| Format_abs.Levelfmt.U; Format_abs.Levelfmt.C; Format_abs.Levelfmt.U;
           Format_abs.Levelfmt.U |]
  in
  let best s =
    List.fold_left Float.min infinity
      (List.map
         (fun c -> Costsim.runtime machine wl { s with Superschedule.chunk = c })
         [ 1; 4; 16 ])
  in
  Alcotest.(check bool) "tuned bcsr beats tuned csr" true (best bcsr < best fixed)

(* Breakdown consistency: final seconds within [makespan, serial]. *)
let test_breakdown_consistency () =
  let r = rng () in
  let machine = Machine.intel_like in
  let m = Gen.clustered r ~cluster:8 ~nrows:700 ~ncols:700 ~nnz:20000 in
  let wl = Workload.of_coo ~id:"bd" m in
  for _ = 1 to 30 do
    let s = Space.sample r (Algorithm.Spmm 256) ~dims:[| 700; 700 |] in
    let b = Costsim.estimate machine wl s in
    Alcotest.(check bool) "seconds >= makespan" true
      (b.Costsim.seconds >= b.Costsim.makespan_seconds -. 1e-15);
    Alcotest.(check bool) "serial = comp + mem + search" true
      (Float.abs
         (b.Costsim.serial_seconds
         -. (b.Costsim.compute_seconds +. b.Costsim.memory_seconds
             +. b.Costsim.search_seconds))
      < 1e-12);
    Alcotest.(check bool) "components non-negative" true
      (b.Costsim.compute_seconds >= 0.0 && b.Costsim.memory_seconds >= 0.0
       && b.Costsim.search_seconds >= 0.0)
  done

(* Larger dense operand => strictly more simulated work for same pattern. *)
let test_jn_monotonicity () =
  let r = rng () in
  let machine = Machine.intel_like in
  let m = Gen.uniform r ~nrows:600 ~ncols:600 ~nnz:12000 in
  let wl = Workload.of_coo ~id:"jn" m in
  let t jn = Costsim.runtime machine wl (Superschedule.fixed_default (Algorithm.Spmm jn)) in
  Alcotest.(check bool) "jn=256 slower than jn=32" true (t 256 > t 32)

(* --- schedule: guided sampler concordance --- *)

let test_guided_samples_often_concordant () =
  let r = rng () in
  let algo = Algorithm.Spmm 256 in
  let concordant = ref 0 in
  let n = 200 in
  for _ = 1 to n do
    let s = Space.sample_guided r algo ~dims:[| 512; 512 |] in
    let spec = Superschedule.to_spec s ~dims:[| 512; 512 |] in
    if Format_abs.Spec.discordant_levels spec ~compute_order:s.Superschedule.compute_order = 0
    then incr concordant
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d concordant" !concordant n)
    true
    (!concordant > n / 2)

(* --- nn: pyramid reuse and embedding-table equivalence --- *)

let test_pyramid_forward_equivalence () =
  let r = rng () in
  let m = Gen.clustered r ~cluster:4 ~nrows:60 ~ncols:60 ~nnz:200 in
  let base = Nn.Smap.of_coo m in
  let conv = Nn.Sparse_conv.create r ~name:"c" ~in_ch:1 ~out_ch:4 ~ksize:3 ~stride:2 in
  let pyr = Nn.Pyramid.build base ~layers:[ (3, 2) ] in
  let a = Nn.Sparse_conv.forward conv base in
  let b = Nn.Sparse_conv.forward_with_map conv pyr.Nn.Pyramid.maps.(0) base in
  Alcotest.(check (array (float 1e-12))) "cached map = fresh map" a.Nn.Smap.feats
    b.Nn.Smap.feats

(* A bias-free linear over a one-hot is a lookup table: row o of W. *)
let test_linear_as_lookup () =
  let r = rng () in
  let l = Nn.Linear.create r ~name:"lut" ~in_dim:5 ~out_dim:3 in
  Array.fill l.Nn.Linear.b.Nn.Param.data 0 3 0.0;
  let onehot = Array.make 5 0.0 in
  onehot.(2) <- 1.0;
  let out = Nn.Linear.forward l ~batch:1 onehot in
  let expected = Array.init 3 (fun o -> l.Nn.Linear.w.Nn.Param.data.((o * 5) + 2)) in
  Alcotest.(check (array (float 1e-12))) "lookup row" expected out

let test_adam_bias_correction_first_step () =
  (* With g constant, the first Adam step is ~ -lr * sign(g). *)
  let p = Nn.Param.create ~name:"p" 1 in
  p.Nn.Param.grad.(0) <- 0.5;
  let adam = Nn.Adam.create ~lr:0.1 [ p ] in
  Nn.Adam.step adam;
  Alcotest.(check (float 1e-6)) "first step = -lr" (-0.1) p.Nn.Param.data.(0)

(* --- waco: batched predict consistency --- *)

let test_predict_batch_matches_singles () =
  let r = rng () in
  let algo = Algorithm.Spmm 8 in
  let m = Gen.uniform r ~nrows:70 ~ncols:70 ~nnz:300 in
  let input = Waco.Extractor.input_of_coo ~id:"pb" m in
  let model = Waco.Costmodel.create r algo in
  let scheds = Array.of_list (Space.sample_distinct r algo ~dims:[| 70; 70 |] ~count:5) in
  let batch = Waco.Costmodel.predict model input scheds in
  Array.iteri
    (fun i s ->
      let single = (Waco.Costmodel.predict model input [| s |]).(0) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "row %d" i) single batch.(i))
    scheds

(* Rank-3 embedder handles 6 derived variables. *)
let test_embedder_rank3 () =
  let r = rng () in
  let algo = Algorithm.Mttkrp 16 in
  let emb = Waco.Embedder.create r ~rank:3 in
  let scheds =
    Array.of_list (Space.sample_distinct r algo ~dims:[| 64; 64; 64 |] ~count:3)
  in
  let out = Waco.Embedder.forward emb scheds in
  Alcotest.(check int) "3 rows of embed_dim" (3 * Waco.Config.embed_dim)
    (Array.length out)

(* --- baselines: ASpT threshold behaviour --- *)

let test_aspt_threshold_extremes () =
  let r = rng () in
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let m = Gen.block_dense r ~block:8 ~nrows:512 ~ncols:512 ~nnz:30000 in
  let wl = Workload.of_coo ~id:"asptx" m in
  (* threshold 1: everything tiled; huge threshold: everything CSR *)
  let all_tiled = Baselines.aspt ~threshold:1 machine wl algo in
  let all_csr = Baselines.aspt ~threshold:1_000_000 machine wl algo in
  let csr = Baselines.fixed_csr machine wl algo in
  Scanf.sscanf all_tiled.Baselines.description "panels=%d tiled_nnz=%d rest_nnz=%d"
    (fun _ tiled rest ->
      Alcotest.(check int) "all tiled" wl.Workload.nnz tiled;
      Alcotest.(check int) "none left" 0 rest);
  Alcotest.(check (float 1e-12)) "degenerate aspt = csr" csr.Baselines.kernel_time
    all_csr.Baselines.kernel_time

(* --- experiments lab --- *)

let test_lab_helpers () =
  Alcotest.(check string) "algo roundtrip" "SpMM"
    (Algorithm.name (Experiments.Lab.algo_of_name "SpMM"));
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Experiments.Lab.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 1.0 (Experiments.Lab.geomean []);
  (* corpora are deterministic across calls *)
  let a = Lazy.force Experiments.Lab.test_corpus_2d in
  let b = Lazy.force Experiments.Lab.test_corpus_2d in
  Alcotest.(check bool) "corpus shared" true (a == b)


(* --- dataset persistence & mmio symmetric --- *)

let test_mmio_symmetric () =
  let path = Filename.temp_file "waco" ".mtx" in
  let oc = open_out path in
  output_string oc
    "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 2.0\n2 1 5.0\n3 3 1.0\n";
  close_out oc;
  let m = Mmio.read_coo path in
  Sys.remove path;
  (* lower triangle mirrored: (1,0) also appears as (0,1) *)
  Alcotest.(check int) "mirrored nnz" 4 (Coo.nnz m);
  let d = Coo.to_dense m in
  Alcotest.(check (float 1e-12)) "mirror value" 5.0 (Dense.get d 0 1)

let test_schedule_serialization_roundtrip () =
  let r = rng () in
  let algo = Algorithm.Mttkrp 16 in
  for _ = 1 to 50 do
    let s = Space.sample r algo ~dims:[| 64; 64; 64 |] in
    let s' = Waco.Dataset_io.parse_schedule algo (Waco.Dataset_io.serialize_schedule s) in
    Alcotest.(check string) "roundtrip" (Superschedule.key s) (Superschedule.key s')
  done

let test_dataset_save_load_roundtrip () =
  let r = rng () in
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let mats =
    List.init 4 (fun i ->
        (Printf.sprintf "dsm%d" i, Gen.uniform r ~nrows:100 ~ncols:100 ~nnz:600))
  in
  let data =
    Waco.Dataset.of_matrices r machine algo mats ~schedules_per_matrix:8
      ~valid_fraction:0.25
  in
  let dir = Filename.temp_file "waco" ".d" in
  Sys.remove dir;
  Waco.Dataset_io.save data ~dir;
  let data' = Waco.Dataset_io.load ~dir ~algo ~machine ~valid_fraction:0.25 r in
  Alcotest.(check int) "tuples preserved" (Waco.Dataset.total_tuples data)
    (Waco.Dataset.total_tuples data');
  Alcotest.(check int) "matrices preserved" 4
    (Array.length data'.Waco.Dataset.train + Array.length data'.Waco.Dataset.valid);
  (* the stored log runtimes must agree with recomputed simulator values *)
  Array.iter
    (fun (smp : Waco.Dataset.sample) ->
      Array.iteri
        (fun i s ->
          let fresh = log (Costsim.runtime machine smp.Waco.Dataset.wl s) /. log 10.0 in
          Alcotest.(check (float 1e-9)) "stored runtime consistent"
            fresh smp.Waco.Dataset.log_runtimes.(i))
        smp.Waco.Dataset.schedules)
    data'.Waco.Dataset.train;
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir


(* --- attribution classifier unit tests --- *)

let test_attribution_classifier () =
  let r = rng () in
  let algo = Algorithm.Spmm 256 in
  let m = Gen.uniform r ~nrows:256 ~ncols:256 ~nnz:2000 in
  let wl = Workload.of_coo ~id:"attr" m in
  let fixed = Superschedule.fixed_default algo in
  let top = Format_abs.Spec.top_var and bot = Format_abs.Spec.bottom_var in
  let u = Format_abs.Levelfmt.U and c = Format_abs.Levelfmt.C in
  (* chunk-only change -> Chunk_size *)
  Alcotest.(check string) "chunk" "OpenMP Chunk Size"
    (Experiments.Attribution.factor_name
       (Experiments.Attribution.classify wl { fixed with Superschedule.chunk = 1 }));
  (* dense inner block -> Dense_block (fill decides the variant) *)
  let bcsr =
    Superschedule.concordant_with_format algo ~splits:[| 4; 4 |]
      ~a_order:[| top 0; top 1; bot 0; bot 1 |] ~a_formats:[| u; c; u; u |]
  in
  let f = Experiments.Attribution.classify wl bcsr in
  Alcotest.(check bool) "bcsr classified as dense block" true
    (f = Experiments.Attribution.Dense_block_full
     || f = Experiments.Attribution.Dense_block_sparse);
  (* inner compressed split -> Sparse_block *)
  let uuc =
    Superschedule.concordant_with_format algo ~splits:[| 1; 128 |]
      ~a_order:[| top 1; top 0; bot 1; bot 0 |] ~a_formats:[| u; u; c; u |]
  in
  Alcotest.(check string) "uuc" "Sparse Block"
    (Experiments.Attribution.factor_name (Experiments.Attribution.classify wl uuc));
  (* SDDMM parallelized over a column var -> Parallelize over Column *)
  let sddmm = Superschedule.fixed_default (Algorithm.Sddmm 256) in
  let colpar = { sddmm with Superschedule.par_var = top 1 } in
  Alcotest.(check string) "column parallel" "Parallelize over Column"
    (Experiments.Attribution.factor_name (Experiments.Attribution.classify wl colpar))

let () =
  Alcotest.run "extra"
    [
      ( "exec-algebra",
        [
          Alcotest.test_case "spmm 1col = spmv" `Quick test_spmm_1col_equals_spmv;
          Alcotest.test_case "sddmm ones" `Quick test_sddmm_ones_scales;
          Alcotest.test_case "mttkrp degenerate" `Quick test_mttkrp_degenerate_spmm;
        ] );
      ( "machine-stories",
        [
          Alcotest.test_case "sparsine: uuc beats csr" `Slow
            test_sparse_block_beats_csr_on_scattered;
          Alcotest.test_case "tsopf: bcsr beats csr" `Slow test_bcsr_beats_csr_on_tsopf;
          Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
          Alcotest.test_case "jn monotone" `Quick test_jn_monotonicity;
        ] );
      ( "schedule-guided",
        [ Alcotest.test_case "concordance" `Quick test_guided_samples_often_concordant ] );
      ( "nn-extra",
        [
          Alcotest.test_case "pyramid equivalence" `Quick test_pyramid_forward_equivalence;
          Alcotest.test_case "linear as lookup" `Quick test_linear_as_lookup;
          Alcotest.test_case "adam first step" `Quick test_adam_bias_correction_first_step;
        ] );
      ( "waco-extra",
        [
          Alcotest.test_case "predict batch" `Quick test_predict_batch_matches_singles;
          Alcotest.test_case "embedder rank3" `Quick test_embedder_rank3;
        ] );
      ( "baselines-extra",
        [ Alcotest.test_case "aspt thresholds" `Quick test_aspt_threshold_extremes ] );
      ("lab", [ Alcotest.test_case "helpers" `Quick test_lab_helpers ]);
      ( "attribution",
        [ Alcotest.test_case "classifier" `Quick test_attribution_classifier ] );
      ( "persistence",
        [
          Alcotest.test_case "mmio symmetric" `Quick test_mmio_symmetric;
          Alcotest.test_case "schedule serialization" `Quick
            test_schedule_serialization_roundtrip;
          Alcotest.test_case "dataset save/load" `Quick test_dataset_save_load_roundtrip;
        ] );
    ]
