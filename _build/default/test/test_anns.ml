(* HNSW tests: recall against brute force, generic-measure search. *)

open Sptensor

let rng () = Rng.create 606

let random_vec r dim = Array.init dim (fun _ -> Rng.float_in r (-1.0) 1.0)

let build r ~n ~dim =
  let h = Anns.Hnsw.create ~dim r in
  let vecs = Array.init n (fun i -> (random_vec r dim, i)) in
  Array.iter (fun (v, payload) -> Anns.Hnsw.insert h v payload) vecs;
  (h, vecs)

let test_heap_orders () =
  let h = Anns.Heap.create () in
  List.iter (fun x -> Anns.Heap.push h x x) [ 3.0; 1.0; 2.0; 0.5; 5.0 ];
  let order = ref [] in
  let rec drain () =
    match Anns.Heap.pop h with
    | Some (p, _) ->
        order := p :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-12))) "min-heap order"
    [ 5.0; 3.0; 2.0; 1.0; 0.5 ] !order

let test_hnsw_exact_small () =
  let r = rng () in
  let h, vecs = build r ~n:50 ~dim:4 in
  (* query at each point finds itself *)
  Array.iter
    (fun (v, payload) ->
      match Anns.Hnsw.search h ~query:v ~k:1 () with
      | [ (d, id) ] ->
          Alcotest.(check (float 1e-9)) "self distance" 0.0 d;
          Alcotest.(check int) "self found" payload (Anns.Hnsw.get_payload h id)
      | _ -> Alcotest.fail "expected one result")
    vecs

let recall r ~n ~dim ~k ~queries =
  let h, _ = build r ~n ~dim in
  let hits = ref 0 and total = ref 0 in
  for _ = 1 to queries do
    let q = random_vec r dim in
    let approx = Anns.Hnsw.search h ~query:q ~k ~ef:60 () |> List.map snd in
    let exact = Anns.Hnsw.brute_force h ~query:q ~k |> List.map snd in
    List.iter
      (fun id ->
        incr total;
        if List.mem id approx then incr hits)
      exact
  done;
  float_of_int !hits /. float_of_int (max 1 !total)

let test_hnsw_recall () =
  let r = rng () in
  let rec_at = recall r ~n:600 ~dim:8 ~k:10 ~queries:20 in
  Alcotest.(check bool)
    (Printf.sprintf "recall@10 >= 0.9 (got %.3f)" rec_at)
    true (rec_at >= 0.9)

let test_hnsw_search_by_generic () =
  let r = rng () in
  let h, vecs = build r ~n:400 ~dim:6 in
  (* generic score: distance to a hidden target vector — not the L2-to-query
     used at build time, exercising the generic-measure traversal *)
  let target = random_vec r 6 in
  let score id =
    let v, _ = vecs.(id) in
    let acc = ref 0.0 in
    Array.iteri (fun i x -> acc := !acc +. ((x -. target.(i)) ** 2.0)) v;
    !acc
  in
  let found, evals = Anns.Hnsw.search_by h ~score:(fun i -> score i) ~k:5 ~ef:50 () in
  Alcotest.(check bool) "found 5" true (List.length found = 5);
  Alcotest.(check bool) "did not scan everything" true (evals < 400);
  (* best found should be near the true best *)
  let best_found = List.fold_left (fun acc (d, _) -> Float.min acc d) infinity found in
  let true_best =
    List.fold_left Float.min infinity (List.init 400 score)
  in
  Alcotest.(check bool)
    (Printf.sprintf "near-optimal (found %.4f vs true %.4f)" best_found true_best)
    true
    (best_found <= true_best *. 3.0 +. 0.05)

let test_hnsw_incremental_size () =
  let r = rng () in
  let h = Anns.Hnsw.create ~dim:3 r in
  Alcotest.(check int) "empty" 0 (Anns.Hnsw.size h);
  Anns.Hnsw.insert h [| 0.0; 0.0; 0.0 |] "a";
  Anns.Hnsw.insert h [| 1.0; 0.0; 0.0 |] "b";
  Alcotest.(check int) "two" 2 (Anns.Hnsw.size h);
  match Anns.Hnsw.search h ~query:[| 0.9; 0.0; 0.0 |] ~k:1 () with
  | [ (_, id) ] -> Alcotest.(check string) "nearest" "b" (Anns.Hnsw.get_payload h id)
  | _ -> Alcotest.fail "expected one"

let test_hnsw_dimension_check () =
  let r = rng () in
  let h = Anns.Hnsw.create ~dim:3 r in
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Hnsw.insert: dimension mismatch")
    (fun () -> Anns.Hnsw.insert h [| 1.0 |] 0)

let qcheck_search_returns_sorted =
  QCheck.Test.make ~name:"search results sorted by distance (prop)" ~count:20
    QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 13) in
      let h, _ = build r ~n:100 ~dim:4 in
      let q = random_vec r 4 in
      let res = Anns.Hnsw.search h ~query:q ~k:10 () in
      let dists = List.map fst res in
      dists = List.sort compare dists)

let () =
  Alcotest.run "anns"
    [
      ( "hnsw",
        [
          Alcotest.test_case "heap" `Quick test_heap_orders;
          Alcotest.test_case "exact small" `Quick test_hnsw_exact_small;
          Alcotest.test_case "recall" `Quick test_hnsw_recall;
          Alcotest.test_case "generic search" `Quick test_hnsw_search_by_generic;
          Alcotest.test_case "incremental" `Quick test_hnsw_incremental_size;
          Alcotest.test_case "dimension check" `Quick test_hnsw_dimension_check;
          QCheck_alcotest.to_alcotest qcheck_search_returns_sorted;
        ] );
    ]
