(* Tests for the SuperSchedule template: validity, sampling, encodings. *)

open Sptensor
open Schedule

let rng () = Rng.create 31337

let dims2 = [| 128; 96 |]

(* --- Algorithm --- *)

let test_algorithm_facts () =
  Alcotest.(check int) "spmv rank" 2 (Algorithm.sparse_rank Algorithm.Spmv);
  Alcotest.(check int) "mttkrp rank" 3 (Algorithm.sparse_rank (Algorithm.Mttkrp 16));
  Alcotest.(check int) "spmm dense" 256 (Algorithm.dense_inner (Algorithm.Spmm 256));
  Alcotest.(check (list int)) "spmv par candidates = i1,i0" [ 0; 1 ]
    (Algorithm.parallel_candidates Algorithm.Spmv);
  (* SDDMM can parallelize columns too (paper §5.2.1) *)
  Alcotest.(check (list int)) "sddmm par candidates" [ 0; 1; 2; 3 ]
    (Algorithm.parallel_candidates (Algorithm.Sddmm 4))

let test_flops_per_entry () =
  Alcotest.(check (float 1e-9)) "spmv" 2.0 (Algorithm.flops_per_entry Algorithm.Spmv);
  Alcotest.(check (float 1e-9)) "spmm" 16.0 (Algorithm.flops_per_entry (Algorithm.Spmm 8))

(* --- Superschedule --- *)

let test_fixed_default_csr () =
  let s = Superschedule.fixed_default (Algorithm.Spmm 8) in
  Superschedule.validate s;
  let spec = Superschedule.to_spec s ~dims:dims2 in
  Alcotest.(check string) "csr" "UC" (Format_abs.Spec.name spec);
  Alcotest.(check int) "spmm chunk" 4 s.Superschedule.chunk;
  let sv = Superschedule.fixed_default Algorithm.Spmv in
  Alcotest.(check int) "spmv chunk 16" 16 sv.Superschedule.chunk

let test_fixed_default_csf () =
  let s = Superschedule.fixed_default (Algorithm.Mttkrp 16) in
  let spec = Superschedule.to_spec s ~dims:[| 32; 32; 32 |] in
  Alcotest.(check string) "csf" "CCC" (Format_abs.Spec.name spec)

let test_validate_rejects_bad_par () =
  let s = Superschedule.fixed_default (Algorithm.Spmm 8) in
  let bad = { s with Superschedule.par_var = Format_abs.Spec.top_var 1 } in
  Alcotest.check_raises "k1 not parallelizable for SpMM"
    (Invalid_argument "Superschedule: par_var not parallelizable for this algorithm")
    (fun () -> Superschedule.validate bad)

let test_key_unique_and_stable () =
  let r = rng () in
  let samples = Space.sample_distinct r (Algorithm.Spmm 8) ~dims:dims2 ~count:100 in
  let keys = List.map Superschedule.key samples in
  Alcotest.(check int) "distinct keys" 100 (List.length (List.sort_uniq compare keys));
  List.iter2
    (fun s k -> Alcotest.(check string) "stable" k (Superschedule.key s))
    samples keys

let test_split_capping () =
  let s = Superschedule.fixed_default (Algorithm.Spmm 8) in
  let s = { s with Superschedule.splits = [| 4096; 4096 |] } in
  let spec = Superschedule.to_spec s ~dims:[| 100; 50 |] in
  Alcotest.(check int) "split capped to dim" 100 spec.Format_abs.Spec.splits.(0);
  Alcotest.(check int) "split capped to dim 2" 50 spec.Format_abs.Spec.splits.(1)

(* --- Space --- *)

let test_sample_always_valid () =
  let r = rng () in
  for _ = 1 to 200 do
    Superschedule.validate (Space.sample r (Algorithm.Sddmm 8) ~dims:dims2)
  done;
  for _ = 1 to 200 do
    Superschedule.validate (Space.sample r (Algorithm.Mttkrp 16) ~dims:[| 64; 64; 64 |])
  done

let test_mutate_valid_and_different () =
  let r = rng () in
  let changed = ref 0 in
  for _ = 1 to 100 do
    let s = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
    let m = Space.mutate r ~dims:dims2 s in
    Superschedule.validate m;
    if Superschedule.key m <> Superschedule.key s then incr changed
  done;
  Alcotest.(check bool) "mutation usually changes" true (!changed > 60)

let test_crossover_valid () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
    let b = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
    Superschedule.validate (Space.crossover r a b)
  done

let test_guided_sampling_valid () =
  let r = rng () in
  for _ = 1 to 100 do
    Superschedule.validate (Space.sample_guided r (Algorithm.Spmm 8) ~dims:dims2);
    Superschedule.validate (Space.sample_guided r (Algorithm.Mttkrp 16) ~dims:[| 32; 32; 32 |])
  done

let test_space_size_large () =
  Alcotest.(check bool) "search space is astronomically large" true
    (Space.log10_size (Algorithm.Spmm 8) ~dims:dims2 > 7.0)

(* --- Encode --- *)

let test_encode_shapes () =
  let r = rng () in
  let s = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
  let e = Encode.encode s in
  Alcotest.(check int) "split one-hots" 2 (Array.length e.Encode.split_onehots);
  Alcotest.(check int) "perm matrix 16" 16 (Array.length e.Encode.compute_perm);
  Alcotest.(check int) "formats 8" 8 (Array.length e.Encode.a_format_onehot);
  Alcotest.(check int) "flat dim" (Encode.flat_dim ~rank:2) (Array.length (Encode.to_flat e))

let test_encode_perm_matrix_rows () =
  let r = rng () in
  let s = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
  let e = Encode.encode s in
  (* each row and column of the permutation matrix sums to 1 *)
  let n = 4 in
  for row = 0 to n - 1 do
    let sum = ref 0.0 in
    for col = 0 to n - 1 do
      sum := !sum +. e.Encode.compute_perm.((row * n) + col)
    done;
    Alcotest.(check (float 1e-9)) "row sum" 1.0 !sum
  done

let test_encode_distinguishes () =
  let r = rng () in
  let a = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
  let b = Space.mutate r ~dims:dims2 a in
  if Superschedule.key a <> Superschedule.key b then begin
    let fa = Encode.to_flat (Encode.encode a) and fb = Encode.to_flat (Encode.encode b) in
    Alcotest.(check bool) "different schedules -> different encodings" true (fa <> fb)
  end

let test_encode_onehot_exact () =
  let s = Superschedule.fixed_default (Algorithm.Spmm 8) in
  let s = { s with Superschedule.chunk = 64 } in
  let e = Encode.encode s in
  Alcotest.(check (float 1e-9)) "chunk 64 -> slot 6" 1.0 e.Encode.chunk_onehot.(6);
  Alcotest.(check (float 1e-9)) "one-hot sums to 1" 1.0
    (Array.fold_left ( +. ) 0.0 e.Encode.chunk_onehot)

let qcheck_sampling_within_menu =
  QCheck.Test.make ~name:"samples use menu values (prop)" ~count:100 QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 3) in
      let s = Space.sample r (Algorithm.Spmm 8) ~dims:dims2 in
      Array.mem s.Superschedule.chunk Space.chunk_options
      && Array.for_all (fun sp -> Array.mem sp Space.split_options) s.Superschedule.splits)

let () =
  Alcotest.run "schedule"
    [
      ( "algorithm",
        [
          Alcotest.test_case "facts" `Quick test_algorithm_facts;
          Alcotest.test_case "flops" `Quick test_flops_per_entry;
        ] );
      ( "superschedule",
        [
          Alcotest.test_case "fixed csr" `Quick test_fixed_default_csr;
          Alcotest.test_case "fixed csf" `Quick test_fixed_default_csf;
          Alcotest.test_case "bad par rejected" `Quick test_validate_rejects_bad_par;
          Alcotest.test_case "keys" `Quick test_key_unique_and_stable;
          Alcotest.test_case "split capping" `Quick test_split_capping;
        ] );
      ( "space",
        [
          Alcotest.test_case "samples valid" `Quick test_sample_always_valid;
          Alcotest.test_case "mutate" `Quick test_mutate_valid_and_different;
          Alcotest.test_case "crossover" `Quick test_crossover_valid;
          Alcotest.test_case "guided" `Quick test_guided_sampling_valid;
          Alcotest.test_case "space size" `Quick test_space_size_large;
        ] );
      ( "encode",
        [
          Alcotest.test_case "shapes" `Quick test_encode_shapes;
          Alcotest.test_case "perm rows" `Quick test_encode_perm_matrix_rows;
          Alcotest.test_case "distinguishes" `Quick test_encode_distinguishes;
          Alcotest.test_case "one-hot exact" `Quick test_encode_onehot_exact;
          QCheck_alcotest.to_alcotest qcheck_sampling_within_menu;
        ] );
    ]
