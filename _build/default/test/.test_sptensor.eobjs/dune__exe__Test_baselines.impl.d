test/test_baselines.ml: Alcotest Algorithm Baselines Costsim Float Gen List Machine Machine_model Rng Scanf Schedule Sptensor Superschedule Workload
