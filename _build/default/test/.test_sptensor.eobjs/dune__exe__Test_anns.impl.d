test/test_anns.ml: Alcotest Anns Array Float List Printf QCheck QCheck_alcotest Rng Sptensor
