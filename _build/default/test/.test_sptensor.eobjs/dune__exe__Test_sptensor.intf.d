test/test_sptensor.mli:
