test/test_nn.ml: Alcotest Array Float Gen List Nn Rng Sptensor
