test/test_format_abs.mli:
