test/test_search.ml: Alcotest Algorithm Array Blackbox Float List Printf Rng Schedule Sptensor Superschedule
