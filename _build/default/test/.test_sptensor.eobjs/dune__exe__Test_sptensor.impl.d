test/test_sptensor.ml: Alcotest Array Coo Csr Dense Filename Fun Gen List Mmio QCheck QCheck_alcotest Rng Sptensor Stats Sys Tensor3
