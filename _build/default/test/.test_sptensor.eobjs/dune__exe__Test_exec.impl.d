test/test_exec.ml: Alcotest Algorithm Array Coo Csr Dense Exec_engine Format_abs Gen List QCheck QCheck_alcotest Rng Schedule Space Sptensor Superschedule Tensor3
