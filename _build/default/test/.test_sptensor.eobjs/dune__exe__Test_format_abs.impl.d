test/test_format_abs.ml: Alcotest Array Coo Format_abs Gen Levelfmt List Packed QCheck QCheck_alcotest Rng Schedule Spec Sptensor Storage_model Tensor3
