test/test_anns.mli:
