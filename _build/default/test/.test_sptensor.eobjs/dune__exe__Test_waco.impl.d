test/test_waco.ml: Alcotest Algorithm Array Costsim Filename Float Gen List Machine Machine_model Nn Printf Rng Schedule Space Sptensor Sys Waco Workload
