test/test_machine.ml: Alcotest Algorithm Coo Costsim Float Format_abs Gen List Machine Machine_model Option Printf QCheck QCheck_alcotest Rng Schedule Space Sptensor String Superschedule Workload
