test/test_integration.ml: Alcotest Algorithm Array Baselines Costsim Csr Dense Exec_engine Float Gen Lazy List Machine Machine_model Printf Rng Schedule Space Sptensor Superschedule Waco Workload
