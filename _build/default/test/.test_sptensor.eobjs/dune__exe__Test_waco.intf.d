test/test_waco.mli:
