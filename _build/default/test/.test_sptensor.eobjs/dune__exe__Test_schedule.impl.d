test/test_schedule.ml: Alcotest Algorithm Array Encode Format_abs List QCheck QCheck_alcotest Rng Schedule Space Sptensor Superschedule
