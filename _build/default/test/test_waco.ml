(* Tests for the WACO core: cost model wiring, gradients through the full
   model, dataset generation, persistence, tuner mechanics. *)

open Sptensor
open Schedule
open Machine_model

let rng () = Rng.create 2023

let algo = Algorithm.Spmm 8

let dims = [| 80; 80 |]

let small_input r =
  let m = Gen.clustered r ~cluster:4 ~nrows:80 ~ncols:80 ~nnz:300 in
  (m, Waco.Extractor.input_of_coo ~id:"cm" m)

let test_extractors_shapes () =
  let r = rng () in
  let _, input = small_input r in
  List.iter
    (fun kind ->
      let e = Waco.Extractor.create r kind in
      let f = Waco.Extractor.forward e input in
      Alcotest.(check int)
        (Waco.Extractor.kind_name kind ^ " feature dim")
        Waco.Config.feature_dim (Array.length f))
    [ Waco.Extractor.Human; Waco.Extractor.Dense_conv; Waco.Extractor.Minkowski;
      Waco.Extractor.Waconet ]

let test_extractor_deterministic () =
  let r = rng () in
  let _, input = small_input r in
  let e = Waco.Extractor.create r Waco.Extractor.Waconet in
  let f1 = Waco.Extractor.forward e input in
  let f2 = Waco.Extractor.forward e input in
  Alcotest.(check (array (float 1e-12))) "same forward" f1 f2

let test_embedder_batch_consistency () =
  let r = rng () in
  let emb = Waco.Embedder.create r ~rank:2 in
  let scheds =
    Array.of_list (Space.sample_distinct r algo ~dims ~count:5)
  in
  let batch = Waco.Embedder.forward emb scheds in
  let single = Waco.Embedder.forward emb [| scheds.(3) |] in
  let d = Waco.Config.embed_dim in
  let slice = Array.sub batch (3 * d) d in
  Alcotest.(check (array (float 1e-9))) "batch row = single row" single slice

let test_costmodel_gradients_flow () =
  let r = rng () in
  let _, input = small_input r in
  let model = Waco.Costmodel.create r algo in
  let scheds = Array.of_list (Space.sample_distinct r algo ~dims ~count:6) in
  let pred, backward = Waco.Costmodel.forward_train model input scheds in
  backward (Array.map (fun p -> p) pred);
  let total_grad = Nn.Param.grad_l2 (Waco.Costmodel.params model) in
  Alcotest.(check bool) "gradients nonzero" true (total_grad > 1e-9)

(* Full-model gradient check on a smooth loss (sum of squared predictions). *)
let test_costmodel_gradcheck () =
  let r = rng () in
  let _, input = small_input r in
  let model = Waco.Costmodel.create r algo in
  let scheds = Array.of_list (Space.sample_distinct r algo ~dims ~count:4) in
  let loss_of () =
    let pred, _ = Waco.Costmodel.forward_train model input scheds in
    Array.fold_left (fun a p -> a +. (0.5 *. p *. p)) 0.0 pred
  in
  let pred, backward = Waco.Costmodel.forward_train model input scheds in
  backward (Array.copy pred);
  let eps = 1e-6 in
  let bad = ref 0 and checked = ref 0 in
  List.iter
    (fun (p : Nn.Param.t) ->
      let n = Nn.Param.size p in
      for t = 0 to min 1 (n - 1) do
        let idx = t * 7919 mod n in
        let orig = p.Nn.Param.data.(idx) in
        p.Nn.Param.data.(idx) <- orig +. eps;
        let lp = loss_of () in
        p.Nn.Param.data.(idx) <- orig -. eps;
        let lm = loss_of () in
        p.Nn.Param.data.(idx) <- orig;
        let fd = (lp -. lm) /. (2.0 *. eps) in
        let an = p.Nn.Param.grad.(idx) in
        let rel =
          Float.abs (fd -. an) /. Float.max 1e-4 (Float.max (Float.abs fd) (Float.abs an))
        in
        incr checked;
        (* ReLU subgradients at exact kinks can disagree; tolerate a few. *)
        if rel > 1e-2 then incr bad
      done)
    (Waco.Costmodel.params model);
  Alcotest.(check bool)
    (Printf.sprintf "gradcheck: %d/%d bad" !bad !checked)
    true
    (float_of_int !bad <= 0.06 *. float_of_int !checked)

let test_predict_tail_matches_full () =
  let r = rng () in
  let _, input = small_input r in
  let model = Waco.Costmodel.create r algo in
  let s = Space.sample r algo ~dims in
  let full = (Waco.Costmodel.predict model input [| s |]).(0) in
  let feature = Waco.Costmodel.feature model input in
  let emb = Waco.Costmodel.embed model [| s |] in
  let tail = Waco.Costmodel.predict_tail model ~feature ~embedding:emb in
  Alcotest.(check (float 1e-9)) "tail = full" full tail

let test_save_load_roundtrip () =
  let r = rng () in
  let _, input = small_input r in
  let model = Waco.Costmodel.create r algo in
  let s = Space.sample r algo ~dims in
  let before = (Waco.Costmodel.predict model input [| s |]).(0) in
  let path = Filename.temp_file "waco" ".model" in
  Waco.Costmodel.save model path;
  (* fresh model with different init *)
  let model2 = Waco.Costmodel.create (Rng.create 999) algo in
  let differs = (Waco.Costmodel.predict model2 input [| s |]).(0) <> before in
  Waco.Costmodel.load model2 path;
  Sys.remove path;
  let after = (Waco.Costmodel.predict model2 input [| s |]).(0) in
  Alcotest.(check bool) "fresh model differed" true differs;
  Alcotest.(check (float 1e-9)) "loaded model agrees" before after

let tiny_dataset r machine =
  let mats =
    List.init 6 (fun i ->
        (Printf.sprintf "m%d" i, Gen.uniform r ~nrows:80 ~ncols:80 ~nnz:400))
  in
  Waco.Dataset.of_matrices r machine algo mats ~schedules_per_matrix:10
    ~valid_fraction:0.3

let test_dataset_shapes () =
  let r = rng () in
  let data = tiny_dataset r Machine.intel_like in
  Alcotest.(check int) "train+valid = 6"
    6
    (Array.length data.Waco.Dataset.train + Array.length data.Waco.Dataset.valid);
  Alcotest.(check bool) "valid nonempty" true (Array.length data.Waco.Dataset.valid >= 1);
  Array.iter
    (fun (s : Waco.Dataset.sample) ->
      Alcotest.(check int) "schedules per matrix" 10 (Array.length s.Waco.Dataset.schedules);
      Array.iter
        (fun lr -> Alcotest.(check bool) "log runtime finite" true (Float.is_finite lr))
        s.Waco.Dataset.log_runtimes)
    data.Waco.Dataset.train;
  let corpus = Waco.Dataset.all_schedules data in
  Alcotest.(check bool) "corpus from train only" true
    (Array.length corpus <= 10 * Array.length data.Waco.Dataset.train)

let test_training_reduces_loss () =
  let r = rng () in
  let data = tiny_dataset r Machine.intel_like in
  let model = Waco.Costmodel.create r algo in
  let curve = Waco.Trainer.train ~lr:2e-3 r model data ~epochs:8 in
  let first = curve.Waco.Trainer.train_loss.(0) in
  let last = curve.Waco.Trainer.train_loss.(7) in
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased (%.3f -> %.3f)" first last)
    true (last < first)

let test_tuner_end_to_end () =
  let r = rng () in
  let machine = Machine.intel_like in
  let data = tiny_dataset r Machine.intel_like in
  let model = Waco.Costmodel.create r algo in
  ignore (Waco.Trainer.train ~lr:2e-3 r model data ~epochs:4);
  let index = Waco.Tuner.build_index r model (Waco.Dataset.all_schedules data) in
  let m = Gen.uniform r ~nrows:90 ~ncols:90 ~nnz:500 in
  let wl = Workload.of_coo ~id:"tune-me" m in
  let input = Waco.Extractor.input_of_coo ~id:"tune-me" m in
  let res = Waco.Tuner.tune ~k:5 model machine wl input index in
  Alcotest.(check int) "measured top-k" 5 res.Waco.Tuner.measured_runs;
  Alcotest.(check bool) "chosen = min of measured" true
    (List.for_all (fun (_, t) -> res.Waco.Tuner.best_measured <= t) res.Waco.Tuner.topk);
  Alcotest.(check bool) "cost evals bounded by corpus" true
    (res.Waco.Tuner.cost_evals <= index.Waco.Tuner.corpus_size);
  Alcotest.(check (float 1e-12)) "measured agrees with simulator"
    (Costsim.runtime machine wl res.Waco.Tuner.best)
    res.Waco.Tuner.best_measured

let test_feature_cache () =
  let r = rng () in
  let _, input = small_input r in
  let model = Waco.Costmodel.create r algo in
  let f1 = Waco.Costmodel.feature model input in
  let f2 = Waco.Costmodel.feature model input in
  Alcotest.(check bool) "cached (same array)" true (f1 == f2);
  Waco.Costmodel.clear_feature_cache model;
  let f3 = Waco.Costmodel.feature model input in
  Alcotest.(check (array (float 1e-12))) "same values after clear" f1 f3

let () =
  Alcotest.run "waco"
    [
      ( "costmodel",
        [
          Alcotest.test_case "extractor shapes" `Quick test_extractors_shapes;
          Alcotest.test_case "extractor deterministic" `Quick test_extractor_deterministic;
          Alcotest.test_case "embedder batch" `Quick test_embedder_batch_consistency;
          Alcotest.test_case "gradients flow" `Quick test_costmodel_gradients_flow;
          Alcotest.test_case "gradcheck" `Slow test_costmodel_gradcheck;
          Alcotest.test_case "predict tail" `Quick test_predict_tail_matches_full;
          Alcotest.test_case "save/load" `Quick test_save_load_roundtrip;
          Alcotest.test_case "feature cache" `Quick test_feature_cache;
        ] );
      ( "training",
        [
          Alcotest.test_case "dataset shapes" `Quick test_dataset_shapes;
          Alcotest.test_case "loss decreases" `Slow test_training_reduces_loss;
          Alcotest.test_case "tuner end-to-end" `Slow test_tuner_end_to_end;
        ] );
    ]
