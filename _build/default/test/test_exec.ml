(* Differential tests: packed-format executors vs the CSR/dense references,
   across randomly sampled formats — the packing/execution pipeline must give
   identical numerics for every representable format. *)

open Sptensor
open Schedule

let rng () = Rng.create 4242

let pack_ok spec m =
  match Format_abs.Packed.of_coo spec m with Ok p -> p | Error e -> Alcotest.fail e

let test_spmv_all_canonical_formats () =
  let r = rng () in
  let m = Gen.clustered r ~cluster:5 ~nrows:80 ~ncols:70 ~nnz:300 in
  let x = Dense.vec_random r 70 in
  let expected = Csr.spmv (Csr.of_coo m) x in
  List.iter
    (fun (name, spec) ->
      let y = Exec_engine.Kernels.spmv (pack_ok spec m) x in
      Alcotest.(check bool) (name ^ " matches") true
        (Dense.vec_approx_equal ~eps:1e-9 y expected))
    [
      ("csr", Format_abs.Spec.csr_like ~dims:[| 80; 70 |]);
      ("csc", Format_abs.Spec.csc ~dims:[| 80; 70 |]);
      ("bcsr4x4", Format_abs.Spec.bcsr ~dims:[| 80; 70 |] ~bi:4 ~bk:4);
      ("ucu8", Format_abs.Spec.ucu ~dims:[| 80; 70 |] ~bi:8);
      ("uuc16", Format_abs.Spec.sparse_block ~dims:[| 80; 70 |] ~bk:16);
    ]

let test_spmm_random_formats () =
  let r = rng () in
  let m = Gen.power_law r ~alpha:1.4 ~nrows:60 ~ncols:50 ~nnz:250 in
  let b = Dense.mat_random r 50 7 in
  let expected = Csr.spmm (Csr.of_coo m) b in
  for _ = 1 to 25 do
    let s = Space.sample r (Algorithm.Spmm 7) ~dims:[| 60; 50 |] in
    match Exec_engine.Kernels.pack_for s m with
    | Error _ -> () (* over budget is fine *)
    | Ok p ->
        let got = Exec_engine.Kernels.spmm p b in
        Alcotest.(check bool)
          ("spmm " ^ Superschedule.describe s)
          true
          (Dense.mat_approx_equal ~eps:1e-9 got expected)
  done

let test_sddmm_random_formats () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:40 ~ncols:45 ~nnz:200 in
  let b = Dense.mat_random r 40 6 in
  let c = Dense.mat_random r 6 45 in
  let expected = Csr.to_coo (Csr.sddmm (Csr.of_coo m) b c) in
  for _ = 1 to 25 do
    let s = Space.sample r (Algorithm.Sddmm 6) ~dims:[| 40; 45 |] in
    match Exec_engine.Kernels.pack_for s m with
    | Error _ -> ()
    | Ok p ->
        let got = Exec_engine.Kernels.sddmm p b c in
        Alcotest.(check bool) "sddmm matches csr reference" true
          (Coo.approx_equal ~eps:1e-9 got expected)
  done

let test_mttkrp_random_formats () =
  let r = rng () in
  let t = Gen.tensor3_blocked r ~block:2 ~dim_i:24 ~dim_k:20 ~dim_l:16 ~nnz:150 in
  let b = Dense.mat_random r 20 5 in
  let c = Dense.mat_random r 16 5 in
  let expected = Tensor3.mttkrp t b c in
  for _ = 1 to 20 do
    let s = Space.sample r (Algorithm.Mttkrp 5) ~dims:[| 24; 20; 16 |] in
    let spec = Superschedule.to_spec s ~dims:[| 24; 20; 16 |] in
    match Format_abs.Packed.of_tensor3 spec t with
    | Error _ -> ()
    | Ok p ->
        let got = Exec_engine.Kernels.mttkrp p b c in
        Alcotest.(check bool) "mttkrp matches reference" true
          (Dense.mat_approx_equal ~eps:1e-9 got expected)
  done

let test_kernel_dimension_checks () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:10 ~ncols:12 ~nnz:20 in
  let p = pack_ok (Format_abs.Spec.csr_like ~dims:[| 10; 12 |]) m in
  Alcotest.check_raises "spmv wrong x"
    (Invalid_argument "Kernels.spmv: x length mismatch") (fun () ->
      ignore (Exec_engine.Kernels.spmv p (Dense.vec_create 5)))

let test_empty_matrix () =
  let m = Coo.of_triplets ~nrows:5 ~ncols:5 [] in
  let p = pack_ok (Format_abs.Spec.csr_like ~dims:[| 5; 5 |]) m in
  let y = Exec_engine.Kernels.spmv p (Dense.vec_init 5 (fun _ -> 1.0)) in
  Alcotest.(check bool) "empty spmv = zeros" true
    (Dense.vec_approx_equal y (Dense.vec_create 5))

let test_single_entry () =
  let m = Coo.of_triplets ~nrows:3 ~ncols:3 [ (1, 2, 5.0) ] in
  let p = pack_ok (Format_abs.Spec.bcsr ~dims:[| 3; 3 |] ~bi:2 ~bk:2) m in
  let y = Exec_engine.Kernels.spmv p [| 1.0; 1.0; 2.0 |] in
  Alcotest.(check (float 1e-12)) "single entry" 10.0 y.(1)

(* Non-divisible splits: padding slots fall outside bounds and must be
   skipped. *)
let test_non_divisible_splits () =
  let r = rng () in
  let m = Gen.uniform r ~nrows:37 ~ncols:23 ~nnz:100 in
  let x = Dense.vec_random r 23 in
  let expected = Csr.spmv (Csr.of_coo m) x in
  let spec = Format_abs.Spec.bcsr ~dims:[| 37; 23 |] ~bi:5 ~bk:7 in
  let y = Exec_engine.Kernels.spmv (pack_ok spec m) x in
  Alcotest.(check bool) "ragged blocks" true (Dense.vec_approx_equal ~eps:1e-9 y expected)

let qcheck_spmv_any_format =
  QCheck.Test.make ~name:"spmv correct under any sampled format (prop)" ~count:60
    QCheck.small_nat
    (fun seed ->
      let r = Rng.create (seed + 5) in
      let nrows = 20 + Rng.int r 60 and ncols = 20 + Rng.int r 60 in
      let m = Gen.uniform r ~nrows ~ncols ~nnz:(20 + Rng.int r 150) in
      let x = Dense.vec_random r ncols in
      let expected = Csr.spmv (Csr.of_coo m) x in
      let s = Space.sample r Algorithm.Spmv ~dims:[| nrows; ncols |] in
      match Exec_engine.Kernels.pack_for s m with
      | Error _ -> true
      | Ok p ->
          Dense.vec_approx_equal ~eps:1e-9 (Exec_engine.Kernels.spmv p x) expected)

let () =
  Alcotest.run "exec"
    [
      ( "kernels",
        [
          Alcotest.test_case "spmv canonical formats" `Quick test_spmv_all_canonical_formats;
          Alcotest.test_case "spmm random formats" `Quick test_spmm_random_formats;
          Alcotest.test_case "sddmm random formats" `Quick test_sddmm_random_formats;
          Alcotest.test_case "mttkrp random formats" `Quick test_mttkrp_random_formats;
          Alcotest.test_case "dimension checks" `Quick test_kernel_dimension_checks;
          Alcotest.test_case "empty matrix" `Quick test_empty_matrix;
          Alcotest.test_case "single entry" `Quick test_single_entry;
          Alcotest.test_case "non-divisible splits" `Quick test_non_divisible_splits;
          QCheck_alcotest.to_alcotest qcheck_spmv_any_format;
        ] );
    ]
