(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (one target per table/figure; see DESIGN.md §4) and runs a
   Bechamel micro-suite over the core kernels.

   Usage:
     dune exec bench/main.exe              # all experiment targets
     dune exec bench/main.exe -- table1 fig13 ...   # selected targets
     dune exec bench/main.exe -- micro     # Bechamel micro-benchmarks only

   Knobs: WACO_SCALE (corpus multiplier), WACO_EPOCHS, WACO_SEED. *)

open Sptensor
open Schedule

let experiment_targets : (string * string * (unit -> unit)) list =
  [
    ("table1", "Motivation: format/schedule/co-opt tuning spaces", Experiments.Motivation.run);
    ("fig13", "Per-matrix speedup distribution on SpMM", Experiments.Perf.run_fig13);
    ("table4", "Geomean speedup vs auto-tuners", Experiments.Perf.run_table4);
    ("table5", "Geomean speedup vs fixed implementations", Experiments.Perf.run_table5);
    ("table6", "Speedup-factor attribution", Experiments.Attribution.run);
    ("fig14", "SIMD heuristic vs block size", Experiments.Simd.run);
    ("fig15", "Cost-model feature extractor comparison", Experiments.Costmodel_exp.run);
    ("fig16", "Search strategies + search-time breakdown", Experiments.Searchcmp.run);
    ("table7", "Cross-hardware generalization", Experiments.Crosshw.run);
    ("fig17", "Tuning overhead vs speedup", Experiments.Overhead.run_fig17);
    ("table8", "End-to-end scenarios", Experiments.Overhead.run_table8);
    ("ablation", "Reproduction design-choice ablations", Experiments.Ablation.run);
  ]

(* table1 also prints table2; keep aliases so those names work as targets. *)
let aliases = [ ("table2", "table1"); ("fig16a", "fig16"); ("fig16b", "fig16") ]

(* --- Bechamel micro-benchmarks over the substrate kernels --- *)

let micro () =
  let open Bechamel in
  let rng = Rng.create 1234 in
  let m = Gen.uniform rng ~nrows:1024 ~ncols:1024 ~nnz:10000 in
  let csr = Csr.of_coo m in
  let x = Dense.vec_random rng 1024 in
  let b = Dense.mat_random rng 1024 16 in
  let algo = Algorithm.Spmm 16 in
  let sched = Superschedule.fixed_default algo in
  let spec = Superschedule.to_spec sched ~dims:[| 1024; 1024 |] in
  let packed =
    match Format_abs.Packed.of_coo spec m with Ok p -> p | Error e -> failwith e
  in
  let wl = Machine_model.Workload.of_coo ~id:"bench" m in
  let machine = Machine_model.Machine.intel_like in
  let model_rng = Rng.create 5 in
  let model = Waco.Costmodel.create model_rng algo in
  let input = Waco.Extractor.input_of_coo ~id:"bench" m in
  let schedules =
    Array.of_list (Space.sample_distinct model_rng algo ~dims:[| 1024; 1024 |] ~count:64)
  in
  let hnsw = Anns.Hnsw.create ~dim:8 model_rng in
  for i = 0 to 499 do
    Anns.Hnsw.insert hnsw (Array.init 8 (fun _ -> Rng.float model_rng)) i
  done;
  let query = Array.init 8 (fun _ -> Rng.float model_rng) in
  let tests =
    [
      Test.make ~name:"pack-csr" (Staged.stage (fun () ->
          ignore (Format_abs.Packed.of_coo spec m)));
      Test.make ~name:"spmv-packed" (Staged.stage (fun () ->
          ignore (Exec_engine.Kernels.spmv packed x)));
      Test.make ~name:"spmv-csr-ref" (Staged.stage (fun () -> ignore (Csr.spmv csr x)));
      Test.make ~name:"spmm-packed" (Staged.stage (fun () ->
          ignore (Exec_engine.Kernels.spmm packed b)));
      Test.make ~name:"costsim-estimate" (Staged.stage (fun () ->
          ignore (Machine_model.Costsim.runtime machine wl sched)));
      Test.make ~name:"waconet-forward" (Staged.stage (fun () ->
          ignore (Waco.Extractor.forward model.Waco.Costmodel.extractor input)));
      Test.make ~name:"embedder-batch64" (Staged.stage (fun () ->
          ignore (Waco.Costmodel.embed model schedules)));
      Test.make ~name:"hnsw-query" (Staged.stage (fun () ->
          ignore (Anns.Hnsw.search hnsw ~query ~k:10 ())));
    ]
  in
  Printf.printf "\n=== Bechamel micro-benchmarks ===\n%!";
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"waco" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name stats ->
      match Analyze.OLS.estimates stats with
      | Some [ est ] -> Printf.printf "  %-28s %14.1f ns/run\n%!" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
    results

let canonical_order selected =
  let ordered =
    List.filter_map
      (fun (n, _, _) -> if List.mem n selected then Some n else None)
      experiment_targets
  in
  ordered @ (if List.mem "micro" selected then [ "micro" ] else [])

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.map (fun a -> match List.assoc_opt a aliases with Some t -> t | None -> a) args
  in
  let selected =
    match args with
    | [] -> List.map (fun (n, _, _) -> n) experiment_targets @ [ "micro" ]
    | _ -> args
  in
  List.iter
    (fun a ->
      if a <> "micro" && not (List.exists (fun (n, _, _) -> n = a) experiment_targets)
      then Printf.eprintf "unknown target: %s (ignored)\n%!" a)
    selected;
  let t0 = Unix.gettimeofday () in
  Printf.printf "WACO reproduction bench (seed=%d scale=%.1f epochs=%d)\n%!"
    (Waco.Config.seed ()) (Waco.Config.scale ()) (Waco.Config.epochs ());
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else
        match List.find_opt (fun (n, _, _) -> n = name) experiment_targets with
        | Some (_, desc, run) ->
            Printf.printf "\n>>> %s — %s\n%!" name desc;
            let t = Unix.gettimeofday () in
            run ();
            Printf.printf "<<< %s done in %.1fs\n%!" name (Unix.gettimeofday () -. t)
        | None -> ())
    (canonical_order (List.sort_uniq compare selected));
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
