(** Correctness executors: run the four algorithms over a sparse operand
    packed in {e any} representable format.  Results are traversal-order
    independent (modulo floating-point association), so the executor walks
    the hierarchy in storage order; the performance consequences of the
    compute schedule are the cost simulator's concern ({!Machine_model}). *)

open Sptensor

val spmv : Format_abs.Packed.t -> Dense.vec -> Dense.vec
(** [y = A x].  Raises [Invalid_argument] on rank/shape mismatch. *)

val spmm : Format_abs.Packed.t -> Dense.mat -> Dense.mat
(** [C = A B], [B] dense row-major. *)

val sddmm : Format_abs.Packed.t -> Dense.mat -> Dense.mat -> Coo.t
(** [D\[i,j\] = A\[i,j\] * (B\[i,:\] . C\[:,j\])]; D returned as COO with A's
    nonzero pattern. *)

val mttkrp : Format_abs.Packed.t -> Dense.mat -> Dense.mat -> Dense.mat
(** [D\[i,j\] = sum A\[i,k,l\] B\[k,j\] C\[l,j\]] for rank-3 packed A. *)

val pack_for :
  Schedule.Superschedule.t -> Coo.t -> (Format_abs.Packed.t, string) result
(** Packs a matrix with the format part of a SuperSchedule; [Error] when the
    materialization budget is exceeded. *)
