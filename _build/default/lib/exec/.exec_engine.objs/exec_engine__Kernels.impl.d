lib/exec/kernels.ml: Array Coo Dense Format_abs Schedule Sptensor
