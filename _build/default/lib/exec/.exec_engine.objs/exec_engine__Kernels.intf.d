lib/exec/kernels.mli: Coo Dense Format_abs Schedule Sptensor
