(* Correctness executors: run each of the four algorithms over a sparse
   operand packed in an arbitrary format.

   Numerically, the result of a sparse kernel does not depend on the traversal
   order (modulo floating-point association), so the executor always walks the
   packed hierarchy in storage order; the *performance* consequences of the
   compute schedule (loop order, parallelization, chunking) are the cost
   simulator's concern (lib/machine).  Padding slots hold exact zeros and are
   skipped by [Packed.iter_leaves]'s bound check plus the zero-contribution
   property of multiplication. *)

open Sptensor

(* y[i] = sum_k A[i,k] * x[k] *)
let spmv (a : Format_abs.Packed.t) (x : Dense.vec) : Dense.vec =
  let dims = a.Format_abs.Packed.spec.Format_abs.Spec.dims in
  if Array.length dims <> 2 then invalid_arg "Kernels.spmv: rank 2 expected";
  if Array.length x <> dims.(1) then invalid_arg "Kernels.spmv: x length mismatch";
  let y = Dense.vec_create dims.(0) in
  Format_abs.Packed.iter_leaves a (fun coords v ->
      if v <> 0.0 then y.(coords.(0)) <- y.(coords.(0)) +. (v *. x.(coords.(1))));
  y

(* C[i,j] = sum_k A[i,k] * B[k,j] *)
let spmm (a : Format_abs.Packed.t) (b : Dense.mat) : Dense.mat =
  let dims = a.Format_abs.Packed.spec.Format_abs.Spec.dims in
  if Array.length dims <> 2 then invalid_arg "Kernels.spmm: rank 2 expected";
  if b.Dense.rows <> dims.(1) then invalid_arg "Kernels.spmm: B rows mismatch";
  let c = Dense.mat_create dims.(0) b.Dense.cols in
  let jn = b.Dense.cols in
  Format_abs.Packed.iter_leaves a (fun coords v ->
      if v <> 0.0 then begin
        let i = coords.(0) and k = coords.(1) in
        for j = 0 to jn - 1 do
          Dense.add_to c i j (v *. Dense.get b k j)
        done
      end);
  c

(* D[i,j] = A[i,j] * sum_k B[i,k] * C[k,j]; D returned as COO with A's
   nonzero pattern. *)
let sddmm (a : Format_abs.Packed.t) (b : Dense.mat) (c : Dense.mat) : Coo.t =
  let dims = a.Format_abs.Packed.spec.Format_abs.Spec.dims in
  if Array.length dims <> 2 then invalid_arg "Kernels.sddmm: rank 2 expected";
  if b.Dense.rows <> dims.(0) || c.Dense.cols <> dims.(1) || b.Dense.cols <> c.Dense.rows
  then invalid_arg "Kernels.sddmm: dimension mismatch";
  let kn = b.Dense.cols in
  let triplets = ref [] in
  Format_abs.Packed.iter_leaves a (fun coords v ->
      if v <> 0.0 then begin
        let i = coords.(0) and j = coords.(1) in
        let acc = ref 0.0 in
        for k = 0 to kn - 1 do
          acc := !acc +. (Dense.get b i k *. Dense.get c k j)
        done;
        triplets := (i, j, v *. !acc) :: !triplets
      end);
  Coo.of_triplets ~nrows:dims.(0) ~ncols:dims.(1) !triplets

(* D[i,j] = sum_{k,l} A[i,k,l] * B[k,j] * C[l,j] *)
let mttkrp (a : Format_abs.Packed.t) (b : Dense.mat) (c : Dense.mat) : Dense.mat =
  let dims = a.Format_abs.Packed.spec.Format_abs.Spec.dims in
  if Array.length dims <> 3 then invalid_arg "Kernels.mttkrp: rank 3 expected";
  if b.Dense.rows <> dims.(1) || c.Dense.rows <> dims.(2) || b.Dense.cols <> c.Dense.cols
  then invalid_arg "Kernels.mttkrp: dimension mismatch";
  let jn = b.Dense.cols in
  let d = Dense.mat_create dims.(0) jn in
  Format_abs.Packed.iter_leaves a (fun coords v ->
      if v <> 0.0 then begin
        let i = coords.(0) and k = coords.(1) and l = coords.(2) in
        for j = 0 to jn - 1 do
          Dense.add_to d i j (v *. Dense.get b k j *. Dense.get c l j)
        done
      end);
  d

(* Run a kernel described by a SuperSchedule on a 2-D matrix, packing A with
   the schedule's format.  Convenience wrapper used by examples; returns the
   packed operand so callers can reuse it across repeated executions. *)
let pack_for (s : Schedule.Superschedule.t) (m : Coo.t) =
  let dims = [| m.Coo.nrows; m.Coo.ncols |] in
  let spec = Schedule.Superschedule.to_spec s ~dims in
  Format_abs.Packed.of_coo spec m
