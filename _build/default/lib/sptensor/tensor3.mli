(** 3-D sparse tensors in coordinate form, for MTTKRP
    ([D\[i,j\] = sum A\[i,k,l\] * B\[k,j\] * C\[l,j\]]). *)

type t = private {
  dim_i : int;
  dim_k : int;
  dim_l : int;
  is : int array;  (** sorted lexicographically by (i, k, l) *)
  ks : int array;
  ls : int array;
  vals : float array;
}

val nnz : t -> int

val of_quads : dim_i:int -> dim_k:int -> dim_l:int -> (int * int * int * float) list -> t
(** Builds from unordered quads; sorts and sums duplicates.  Raises
    [Invalid_argument] on out-of-bounds coordinates. *)

val to_quads : t -> (int * int * int * float) list

val iter : (int -> int -> int -> float -> unit) -> t -> unit

val mttkrp : t -> Dense.mat -> Dense.mat -> Dense.mat
(** Reference matricized-tensor-times-Khatri-Rao-product. *)

val flatten : t -> Coo.t
(** Mode-0 flattening: collapses [(k, l)] into one column index, giving the
    2-D view the feature extractor consumes (the SpTFS approach the paper
    follows for 3-D tensors). *)

val pp : Format.formatter -> t -> unit
