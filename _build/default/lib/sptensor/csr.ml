(* Compressed Sparse Row matrices.

   CSR is the fixed format of the FixedCSR and MKL-like baselines and the
   reference implementation the differential tests compare against. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows+1 *)
  col_idx : int array; (* length nnz *)
  vals : float array; (* length nnz *)
}

let nnz t = Array.length t.col_idx

let of_coo (c : Coo.t) =
  let row_ptr = Coo.row_ptr c in
  {
    nrows = c.Coo.nrows;
    ncols = c.Coo.ncols;
    row_ptr;
    col_idx = Array.copy c.Coo.cols;
    vals = Array.copy c.Coo.vals;
  }

let to_coo (t : t) =
  let triplets = ref [] in
  for i = t.nrows - 1 downto 0 do
    for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
      triplets := (i, t.col_idx.(k), t.vals.(k)) :: !triplets
    done
  done;
  Coo.of_triplets ~nrows:t.nrows ~ncols:t.ncols !triplets

(* y = A * x *)
let spmv t (x : Dense.vec) =
  if Array.length x <> t.ncols then invalid_arg "Csr.spmv: dimension mismatch";
  let y = Dense.vec_create t.nrows in
  for i = 0 to t.nrows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.vals.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

(* C = A * B, B dense row-major. *)
let spmm t (b : Dense.mat) =
  if b.Dense.rows <> t.ncols then invalid_arg "Csr.spmm: dimension mismatch";
  let c = Dense.mat_create t.nrows b.Dense.cols in
  let jn = b.Dense.cols in
  for i = 0 to t.nrows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let a = t.vals.(k) and col = t.col_idx.(k) in
      for j = 0 to jn - 1 do
        Dense.add_to c i j (a *. Dense.get b col j)
      done
    done
  done;
  c

(* D[i,j] = A[i,j] * (B[i,:] . C[:,j]) with A's pattern; B is rows x k,
   C is k x cols. *)
let sddmm t (b : Dense.mat) (c : Dense.mat) =
  if b.Dense.rows <> t.nrows || c.Dense.cols <> t.ncols || b.Dense.cols <> c.Dense.rows
  then invalid_arg "Csr.sddmm: dimension mismatch";
  let kn = b.Dense.cols in
  let out_vals = Array.make (nnz t) 0.0 in
  for i = 0 to t.nrows - 1 do
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(p) in
      let acc = ref 0.0 in
      for k = 0 to kn - 1 do
        acc := !acc +. (Dense.get b i k *. Dense.get c k j)
      done;
      out_vals.(p) <- t.vals.(p) *. !acc
    done
  done;
  { t with vals = out_vals }

let pp ppf t = Fmt.pf ppf "csr %dx%d nnz=%d" t.nrows t.ncols (nnz t)
