(* Dense vectors and row-major matrices used as the dense operands of the four
   kernels (SpMV's vector, SpMM/SDDMM/MTTKRP's factor matrices) and as
   reference outputs in differential tests. *)

type vec = float array

type mat = {
  rows : int;
  cols : int;
  data : float array; (* row-major, length rows*cols *)
}

let vec_create n = Array.make n 0.0

let vec_init n f = Array.init n f

let vec_random rng n = Array.init n (fun _ -> Rng.float_in rng (-1.0) 1.0)

let mat_create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let mat_init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let mat_random rng rows cols =
  mat_init rows cols (fun _ _ -> Rng.float_in rng (-1.0) 1.0)

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

let add_to m i j v =
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. v

let mat_copy m = { m with data = Array.copy m.data }

let mat_fill m v = Array.fill m.data 0 (Array.length m.data) v

(* Max absolute elementwise difference; infinity on shape mismatch. *)
let mat_max_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then infinity
  else begin
    let d = ref 0.0 in
    Array.iteri (fun k v -> d := Float.max !d (Float.abs (v -. b.data.(k)))) a.data;
    !d
  end

let vec_max_diff a b =
  if Array.length a <> Array.length b then infinity
  else begin
    let d = ref 0.0 in
    Array.iteri (fun k v -> d := Float.max !d (Float.abs (v -. b.(k)))) a;
    !d
  end

let vec_approx_equal ?(eps = 1e-6) a b = vec_max_diff a b <= eps

let mat_approx_equal ?(eps = 1e-6) a b = mat_max_diff a b <= eps

let pp_vec ppf v =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") float) v

let pp_mat ppf m =
  Fmt.pf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Fmt.pf ppf "|";
    for j = 0 to m.cols - 1 do
      Fmt.pf ppf " %6.2f" (get m i j)
    done;
    Fmt.pf ppf " |@,"
  done;
  Fmt.pf ppf "@]"
