lib/sptensor/tensor3.ml: Array Coo Dense Fmt List
