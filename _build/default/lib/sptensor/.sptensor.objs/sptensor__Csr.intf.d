lib/sptensor/csr.mli: Coo Dense Format
