lib/sptensor/gen.ml: Array Coo Hashtbl List Printf Rng Tensor3
