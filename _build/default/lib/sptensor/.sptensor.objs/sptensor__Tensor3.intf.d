lib/sptensor/tensor3.mli: Coo Dense Format
