lib/sptensor/mmio.mli: Coo
