lib/sptensor/dense.mli: Format Rng
