lib/sptensor/coo.mli: Dense Format
