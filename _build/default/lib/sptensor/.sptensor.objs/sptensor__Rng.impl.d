lib/sptensor/rng.ml: Array Float Int64
