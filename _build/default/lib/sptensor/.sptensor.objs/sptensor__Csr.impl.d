lib/sptensor/csr.ml: Array Coo Dense Fmt
