lib/sptensor/mmio.ml: Coo Fun List Printf String
