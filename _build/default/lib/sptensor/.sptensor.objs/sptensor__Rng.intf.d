lib/sptensor/rng.mli:
