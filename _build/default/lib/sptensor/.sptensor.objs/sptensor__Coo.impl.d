lib/sptensor/coo.ml: Array Dense Float Fmt List Printf
