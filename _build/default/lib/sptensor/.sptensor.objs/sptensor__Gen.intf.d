lib/sptensor/gen.mli: Coo Rng Tensor3
