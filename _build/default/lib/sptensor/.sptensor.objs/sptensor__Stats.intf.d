lib/sptensor/stats.mli: Coo Format
