lib/sptensor/stats.ml: Array Coo Float Fmt Hashtbl
