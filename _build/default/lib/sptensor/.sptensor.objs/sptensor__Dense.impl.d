lib/sptensor/dense.ml: Array Float Fmt Rng
