(** Minimal MatrixMarket coordinate-format IO: `matrix coordinate real
    general` plus `pattern` (values default to 1.0), with `%` comments and
    1-based indices. *)

exception Parse_error of string

val write_coo : string -> Coo.t -> unit
(** Writes a matrix to [path] in MatrixMarket coordinate format. *)

val read_coo : string -> Coo.t
(** Reads a matrix.  Raises [Parse_error] on malformed input and
    [Sys_error] on IO failure. *)
