(* Synthetic sparsity-pattern generators: our stand-in for SuiteSparse.

   The families below cover the pattern axes the paper's analysis depends on:
   skewed vs uniform row-degree distributions (load balancing, Table 6 "OpenMP
   chunk size"), dense blocks (register/SIMD reuse, "Dense Block" factors),
   scattered fine structure (sparse-block cache effects, the sparsine case),
   banded/mesh locality, and graph-like power-law structure.  All are
   deterministic given an [Rng.t]. *)

type family =
  | Uniform
  | Power_law of float (* row-degree Zipf exponent *)
  | Banded of int (* half bandwidth *)
  | Block_dense of int (* block edge; TSOPF-like *)
  | Rmat (* Kronecker/R-MAT graph *)
  | Stencil2d (* 5-point mesh on a sqrt(n) x sqrt(n) grid *)
  | Clustered of int (* cluster edge *)

let family_name = function
  | Uniform -> "uniform"
  | Power_law a -> Printf.sprintf "powerlaw%.1f" a
  | Banded b -> Printf.sprintf "banded%d" b
  | Block_dense b -> Printf.sprintf "block%d" b
  | Rmat -> "rmat"
  | Stencil2d -> "stencil2d"
  | Clustered c -> Printf.sprintf "clustered%d" c

let all_families =
  [|
    Uniform;
    Power_law 1.1;
    Power_law 1.6;
    Banded 8;
    Banded 64;
    Block_dense 4;
    Block_dense 8;
    Rmat;
    Stencil2d;
    Clustered 16;
  |]

let random_value rng = Rng.float_in rng 0.1 1.0

(* Draw approximately [nnz] distinct coordinates using [draw]; gives up after
   proportionally many collisions so adversarial parameters terminate. *)
let fill_distinct rng ~nrows ~ncols ~nnz draw =
  let tbl = Hashtbl.create (2 * nnz) in
  let attempts = ref 0 in
  let budget = 20 * nnz in
  while Hashtbl.length tbl < nnz && !attempts < budget do
    incr attempts;
    let i, j = draw () in
    if i >= 0 && i < nrows && j >= 0 && j < ncols then
      if not (Hashtbl.mem tbl (i, j)) then Hashtbl.add tbl (i, j) (random_value rng)
  done;
  let triplets = Hashtbl.fold (fun (i, j) v acc -> (i, j, v) :: acc) tbl [] in
  Coo.of_triplets ~nrows ~ncols triplets

let uniform rng ~nrows ~ncols ~nnz =
  fill_distinct rng ~nrows ~ncols ~nnz (fun () -> (Rng.int rng nrows, Rng.int rng ncols))

(* Skewed: a few heavy rows hold most of the nonzeros. *)
let power_law rng ~alpha ~nrows ~ncols ~nnz =
  let row_of = Rng.permutation rng nrows in
  fill_distinct rng ~nrows ~ncols ~nnz (fun () ->
      (row_of.(Rng.zipf rng ~alpha (min nrows 4096)), Rng.int rng ncols))

let banded rng ~half_bw ~nrows ~ncols ~nnz =
  fill_distinct rng ~nrows ~ncols ~nnz (fun () ->
      let i = Rng.int rng nrows in
      let j = i + Rng.int_in rng (-half_bw) half_bw in
      (i, j))

(* Random dense blocks of edge [block]; targets [nnz] total entries. *)
let block_dense rng ~block ~nrows ~ncols ~nnz =
  let per_block = block * block in
  let nblocks = max 1 (nnz / per_block) in
  let tbl = Hashtbl.create (2 * nnz) in
  for _ = 1 to nblocks do
    let bi = Rng.int rng (max 1 (nrows / block)) * block in
    let bj = Rng.int rng (max 1 (ncols / block)) * block in
    for di = 0 to block - 1 do
      for dj = 0 to block - 1 do
        let i = bi + di and j = bj + dj in
        if i < nrows && j < ncols && not (Hashtbl.mem tbl (i, j)) then
          Hashtbl.add tbl (i, j) (random_value rng)
      done
    done
  done;
  let triplets = Hashtbl.fold (fun (i, j) v acc -> (i, j, v) :: acc) tbl [] in
  Coo.of_triplets ~nrows ~ncols triplets

(* R-MAT: recursive quadrant descent with skewed probabilities. *)
let rmat ?(pa = 0.57) ?(pb = 0.19) ?(pc = 0.19) rng ~nrows ~ncols ~nnz =
  let draw () =
    let rec descend i0 i1 j0 j1 =
      if i1 - i0 <= 1 && j1 - j0 <= 1 then (i0, j0)
      else begin
        let im = (i0 + i1) / 2 and jm = (j0 + j1) / 2 in
        let r = Rng.float rng in
        if r < pa then descend i0 (max (i0 + 1) im) j0 (max (j0 + 1) jm)
        else if r < pa +. pb then descend i0 (max (i0 + 1) im) (min jm (j1 - 1)) j1
        else if r < pa +. pb +. pc then descend (min im (i1 - 1)) i1 j0 (max (j0 + 1) jm)
        else descend (min im (i1 - 1)) i1 (min jm (j1 - 1)) j1
      end
    in
    descend 0 nrows 0 ncols
  in
  fill_distinct rng ~nrows ~ncols ~nnz draw

(* 5-point stencil on a g x g grid (g = floor(sqrt nrows)); classic mesh. *)
let stencil2d rng ~nrows ~ncols =
  let g = max 2 (int_of_float (sqrt (float_of_int (min nrows ncols)))) in
  let n = g * g in
  let triplets = ref [] in
  for x = 0 to g - 1 do
    for y = 0 to g - 1 do
      let node = (x * g) + y in
      let neighbors =
        [ (x, y); (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]
      in
      List.iter
        (fun (nx, ny) ->
          if nx >= 0 && nx < g && ny >= 0 && ny < g then
            triplets := (node, (nx * g) + ny, random_value rng) :: !triplets)
        neighbors
    done
  done;
  Coo.of_triplets ~nrows:n ~ncols:n !triplets

(* Clusters: pick cluster centers; scatter points with geometric falloff. *)
let clustered rng ~cluster ~nrows ~ncols ~nnz =
  let ncenters = max 1 (nnz / (cluster * 4)) in
  let centers =
    Array.init ncenters (fun _ -> (Rng.int rng nrows, Rng.int rng ncols))
  in
  fill_distinct rng ~nrows ~ncols ~nnz (fun () ->
      let ci, cj = Rng.choose rng centers in
      let di = int_of_float (Rng.gaussian rng *. float_of_int cluster) in
      let dj = int_of_float (Rng.gaussian rng *. float_of_int cluster) in
      (ci + di, cj + dj))

let generate rng family ~nrows ~ncols ~nnz =
  match family with
  | Uniform -> uniform rng ~nrows ~ncols ~nnz
  | Power_law alpha -> power_law rng ~alpha ~nrows ~ncols ~nnz
  | Banded half_bw -> banded rng ~half_bw ~nrows ~ncols ~nnz
  | Block_dense block -> block_dense rng ~block ~nrows ~ncols ~nnz
  | Rmat -> rmat rng ~nrows ~ncols ~nnz
  | Stencil2d -> stencil2d rng ~nrows ~ncols
  | Clustered cluster -> clustered rng ~cluster ~nrows ~ncols ~nnz

(* The paper's augmentation: arbitrarily resize an existing pattern by scaling
   coordinates into a new shape (collisions sum). *)
let resize rng (m : Coo.t) ~nrows ~ncols =
  let jitter () = Rng.float_in rng 0.0 0.999 in
  let scale_i = float_of_int nrows /. float_of_int m.Coo.nrows in
  let scale_j = float_of_int ncols /. float_of_int m.Coo.ncols in
  let triplets =
    List.map
      (fun (i, j, v) ->
        let ni = int_of_float ((float_of_int i +. jitter ()) *. scale_i) in
        let nj = int_of_float ((float_of_int j +. jitter ()) *. scale_j) in
        (min (nrows - 1) (max 0 ni), min (ncols - 1) (max 0 nj), v))
      (Coo.to_triplets m)
  in
  Coo.of_triplets ~nrows ~ncols triplets

(* --- Named analogues of the paper's motivating matrices (Fig. 2), scaled
   down 8x but with matching structure. --- *)

(* pli: 22,695^2, 59 nnz/row — moderately dense unstructured + weak banding.
   Analogues are ~8x smaller in dimension but keep the paper's nnz/row, so
   each matrix sits in the same compute/memory-bound regime as the original. *)
let pli_like rng =
  let n = 2840 in
  let a = uniform rng ~nrows:n ~ncols:n ~nnz:120000 in
  let b = banded rng ~half_bw:24 ~nrows:n ~ncols:n ~nnz:48000 in
  Coo.of_triplets ~nrows:n ~ncols:n (Coo.to_triplets a @ Coo.to_triplets b)

(* TSOPF: 25,626^2, 264 nnz/row — strong dense-block structure. *)
let tsopf_like rng = block_dense rng ~block:8 ~nrows:3200 ~ncols:3200 ~nnz:840000

(* sparsine: 50,000^2, 31 nnz/row — fine scattered structure, no blocks. *)
let sparsine_like rng = uniform rng ~nrows:6250 ~ncols:6250 ~nnz:190000

(* bcsstk29 analogue used by the search-strategy comparison (Fig. 16). *)
let bcsstk_like rng =
  let a = banded rng ~half_bw:40 ~nrows:3480 ~ncols:3480 ~nnz:40000 in
  let b = block_dense rng ~block:4 ~nrows:3480 ~ncols:3480 ~nnz:20000 in
  Coo.of_triplets ~nrows:3480 ~ncols:3480 (Coo.to_triplets a @ Coo.to_triplets b)

type named = { name : string; matrix : Coo.t }

(* A diverse corpus of [count] named matrices, ~SuiteSparse-in-miniature.
   Shapes and densities vary across draws; resizing augmentation is applied to
   a third of them, mirroring the paper's dataset construction. *)
let suite rng ~count ~max_dim ~max_nnz =
  List.init count (fun idx ->
      let family = all_families.(idx mod Array.length all_families) in
      let nrows = Rng.int_in rng (max_dim / 8) max_dim in
      let ncols =
        if Rng.float rng < 0.7 then nrows else Rng.int_in rng (max_dim / 8) max_dim
      in
      (* Target rows-density (nonzeros per row) rather than global density:
         SuiteSparse matrices span memory-bound (few nnz/row) to compute-bound
         (hundreds of nnz/row) regimes, and the format/schedule trade-offs
         differ across that axis. *)
      let per_row = Rng.choose rng [| 8; 16; 32; 64; 96; 160; 240 |] in
      let nnz =
        min max_nnz (max 64 (min (nrows * per_row) (nrows * ncols / 2)))
      in
      let m = generate rng family ~nrows ~ncols ~nnz in
      let m =
        if Rng.float rng < 0.33 then
          resize rng m
            ~nrows:(Rng.int_in rng (max_dim / 8) max_dim)
            ~ncols:(Rng.int_in rng (max_dim / 8) max_dim)
        else m
      in
      { name = Printf.sprintf "%s_%03d" (family_name family) idx; matrix = m })

(* 3-D tensor generators for MTTKRP (paper follows SpTFS's approach). *)
let tensor3_uniform rng ~dim_i ~dim_k ~dim_l ~nnz =
  let tbl = Hashtbl.create (2 * nnz) in
  let attempts = ref 0 in
  while Hashtbl.length tbl < nnz && !attempts < 20 * nnz do
    incr attempts;
    let c = (Rng.int rng dim_i, Rng.int rng dim_k, Rng.int rng dim_l) in
    if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c (random_value rng)
  done;
  Tensor3.of_quads ~dim_i ~dim_k ~dim_l
    (Hashtbl.fold (fun (i, k, l) v acc -> (i, k, l, v) :: acc) tbl [])

let tensor3_blocked rng ~block ~dim_i ~dim_k ~dim_l ~nnz =
  let per_block = block * block * block in
  let nblocks = max 1 (nnz / per_block) in
  let tbl = Hashtbl.create (2 * nnz) in
  for _ = 1 to nblocks do
    let bi = Rng.int rng (max 1 (dim_i / block)) * block in
    let bk = Rng.int rng (max 1 (dim_k / block)) * block in
    let bl = Rng.int rng (max 1 (dim_l / block)) * block in
    for di = 0 to block - 1 do
      for dk = 0 to block - 1 do
        for dl = 0 to block - 1 do
          let c = (bi + di, bk + dk, bl + dl) in
          let i, k, l = c in
          if i < dim_i && k < dim_k && l < dim_l && not (Hashtbl.mem tbl c) then
            Hashtbl.add tbl c (random_value rng)
        done
      done
    done
  done;
  Tensor3.of_quads ~dim_i ~dim_k ~dim_l
    (Hashtbl.fold (fun (i, k, l) v acc -> (i, k, l, v) :: acc) tbl [])

(* Skewed 3-D tensor: heavy slices along mode 0. *)
let tensor3_skewed rng ~alpha ~dim_i ~dim_k ~dim_l ~nnz =
  let slice_of = Rng.permutation rng dim_i in
  let tbl = Hashtbl.create (2 * nnz) in
  let attempts = ref 0 in
  while Hashtbl.length tbl < nnz && !attempts < 20 * nnz do
    incr attempts;
    let c =
      ( slice_of.(Rng.zipf rng ~alpha (min dim_i 2048)),
        Rng.int rng dim_k,
        Rng.int rng dim_l )
    in
    if not (Hashtbl.mem tbl c) then Hashtbl.add tbl c (random_value rng)
  done;
  Tensor3.of_quads ~dim_i ~dim_k ~dim_l
    (Hashtbl.fold (fun (i, k, l) v acc -> (i, k, l, v) :: acc) tbl [])

type named3 = { name3 : string; tensor : Tensor3.t }

(* Diverse corpus of named 3-D tensors for MTTKRP. *)
let tensor3_suite rng ~count ~max_dim ~max_nnz =
  List.init count (fun idx ->
      let dim () = Rng.int_in rng (max_dim / 4) max_dim in
      let dim_i = dim () and dim_k = dim () and dim_l = dim () in
      let nnz = min max_nnz (Rng.int_in rng (max_nnz / 16) max_nnz) in
      let kind = idx mod 3 in
      let t =
        if kind = 0 then tensor3_uniform rng ~dim_i ~dim_k ~dim_l ~nnz
        else if kind = 1 then
          tensor3_blocked rng ~block:(Rng.choose rng [| 2; 4 |]) ~dim_i ~dim_k ~dim_l ~nnz
        else tensor3_skewed rng ~alpha:1.3 ~dim_i ~dim_k ~dim_l ~nnz
      in
      let family = [| "t3unif"; "t3block"; "t3skew" |].(kind) in
      { name3 = Printf.sprintf "%s_%03d" family idx; tensor = t })
