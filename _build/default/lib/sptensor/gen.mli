(** Synthetic sparsity-pattern generators: the reproduction's stand-in for
    the SuiteSparse collection (see DESIGN.md).  The families cover the
    pattern axes the paper's analysis depends on: skewed vs uniform row
    degrees (load balancing), dense blocks (SIMD/register reuse), scattered
    fine structure (sparse-block cache effects), banded/mesh locality, and
    power-law graphs.  All generators are deterministic given an [Rng.t]. *)

type family =
  | Uniform
  | Power_law of float  (** row-degree Zipf exponent *)
  | Banded of int  (** half bandwidth *)
  | Block_dense of int  (** block edge; TSOPF-like *)
  | Rmat  (** Kronecker / R-MAT graph *)
  | Stencil2d  (** 5-point mesh on a [sqrt n x sqrt n] grid *)
  | Clustered of int  (** cluster edge *)

val family_name : family -> string

val all_families : family array

val uniform : Rng.t -> nrows:int -> ncols:int -> nnz:int -> Coo.t

val power_law : Rng.t -> alpha:float -> nrows:int -> ncols:int -> nnz:int -> Coo.t
(** A few heavy rows hold most of the nonzeros. *)

val banded : Rng.t -> half_bw:int -> nrows:int -> ncols:int -> nnz:int -> Coo.t

val block_dense : Rng.t -> block:int -> nrows:int -> ncols:int -> nnz:int -> Coo.t
(** Randomly placed fully dense aligned blocks of edge [block]. *)

val rmat :
  ?pa:float -> ?pb:float -> ?pc:float ->
  Rng.t -> nrows:int -> ncols:int -> nnz:int -> Coo.t

val stencil2d : Rng.t -> nrows:int -> ncols:int -> Coo.t
(** 5-point stencil on a [g x g] grid with [g = floor (sqrt (min nrows ncols))];
    the result is [g^2 x g^2]. *)

val clustered : Rng.t -> cluster:int -> nrows:int -> ncols:int -> nnz:int -> Coo.t

val generate : Rng.t -> family -> nrows:int -> ncols:int -> nnz:int -> Coo.t

val resize : Rng.t -> Coo.t -> nrows:int -> ncols:int -> Coo.t
(** The paper's dataset augmentation: rescale coordinates into a new shape
    (collisions sum). *)

(** {2 Named analogues of the paper's motivating matrices (Fig. 2)}

    ~8x smaller in dimension but with the original nnz/row, so each sits in
    the same compute/memory-bound regime. *)

val pli_like : Rng.t -> Coo.t
val tsopf_like : Rng.t -> Coo.t
val sparsine_like : Rng.t -> Coo.t
val bcsstk_like : Rng.t -> Coo.t
(** The bcsstk29 analogue used by the search-strategy comparison (Fig. 16). *)

(** {2 Corpora} *)

type named = { name : string; matrix : Coo.t }

val suite : Rng.t -> count:int -> max_dim:int -> max_nnz:int -> named list
(** A diverse corpus of named matrices — SuiteSparse in miniature.  A third
    are resize-augmented, mirroring §4.1.3. *)

(** {2 3-D tensors (MTTKRP workloads)} *)

val tensor3_uniform : Rng.t -> dim_i:int -> dim_k:int -> dim_l:int -> nnz:int -> Tensor3.t

val tensor3_blocked :
  Rng.t -> block:int -> dim_i:int -> dim_k:int -> dim_l:int -> nnz:int -> Tensor3.t

val tensor3_skewed :
  Rng.t -> alpha:float -> dim_i:int -> dim_k:int -> dim_l:int -> nnz:int -> Tensor3.t

type named3 = { name3 : string; tensor : Tensor3.t }

val tensor3_suite : Rng.t -> count:int -> max_dim:int -> max_nnz:int -> named3 list
