(** Dense vectors and row-major matrices: the dense operands of the kernels
    and the reference targets of differential tests. *)

type vec = float array

type mat = { rows : int; cols : int; data : float array (** row-major *) }

val vec_create : int -> vec
(** Zero vector. *)

val vec_init : int -> (int -> float) -> vec

val vec_random : Rng.t -> int -> vec
(** Entries uniform in [(-1, 1)]. *)

val mat_create : int -> int -> mat
(** Zero matrix. *)

val mat_init : int -> int -> (int -> int -> float) -> mat

val mat_random : Rng.t -> int -> int -> mat

val get : mat -> int -> int -> float

val set : mat -> int -> int -> float -> unit

val add_to : mat -> int -> int -> float -> unit
(** [add_to m i j v] accumulates [v] into [m.(i,j)]. *)

val mat_copy : mat -> mat

val mat_fill : mat -> float -> unit

val mat_max_diff : mat -> mat -> float
(** Max absolute elementwise difference; [infinity] on shape mismatch. *)

val vec_max_diff : vec -> vec -> float

val vec_approx_equal : ?eps:float -> vec -> vec -> bool

val mat_approx_equal : ?eps:float -> mat -> mat -> bool

val pp_vec : Format.formatter -> vec -> unit

val pp_mat : Format.formatter -> mat -> unit
