(** Compressed Sparse Row matrices — the fixed format of the FixedCSR and
    MKL-like baselines, and the reference implementation the differential
    tests compare the generic packed executors against. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;  (** length nrows+1 *)
  col_idx : int array;  (** length nnz *)
  vals : float array;  (** length nnz *)
}

val nnz : t -> int

val of_coo : Coo.t -> t

val to_coo : t -> Coo.t

val spmv : t -> Dense.vec -> Dense.vec
(** [spmv a x] is [a * x].  Raises [Invalid_argument] on dimension mismatch. *)

val spmm : t -> Dense.mat -> Dense.mat
(** [spmm a b] is [a * b] with [b] dense row-major. *)

val sddmm : t -> Dense.mat -> Dense.mat -> t
(** [sddmm a b c] computes [d.(i,j) = a.(i,j) * (b.(i,:) . c.(:,j))] over
    [a]'s nonzero pattern. *)

val pp : Format.formatter -> t -> unit
