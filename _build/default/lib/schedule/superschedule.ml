(* The SuperSchedule (§4.1.2): a unified template defining the format schedule
   and the compute schedule together.  Each logical index of the sparse
   operand is split exactly once (size 1 = no split); the template fixes

     - compute schedule: loop order over the derived variables, which loop is
       parallelized, thread count, OpenMP dynamic chunk size;
     - format schedule: A's level order and per-level U/C formats.

   Dense operands keep the fixed orientations of the paper's evaluation setup
   (SpMM B/C row-major, SDDMM B row-major / C column-major, MTTKRP B/C
   row-major), so they are not part of the template. *)

type threads = Half | Full

type t = {
  algo : Algorithm.t;
  splits : int array; (* inner split size per sparse logical dim *)
  compute_order : int array; (* permutation of the 2*rank derived vars *)
  par_var : int; (* derived var that is parallelized *)
  threads : threads;
  chunk : int; (* OpenMP dynamic chunk size *)
  a_order : int array; (* A's level order (permutation of derived vars) *)
  a_formats : Format_abs.Levelfmt.t array; (* per level of A *)
}

let threads_name = function Half -> "half" | Full -> "full"

(* A's format Spec for a concrete tensor shape. *)
let to_spec t ~dims =
  Format_abs.Spec.make ~dims
    ~splits:(Array.map2 (fun s d -> min s (max 1 d)) t.splits dims)
    ~order:t.a_order ~formats:t.a_formats

let validate t =
  let r = Algorithm.sparse_rank t.algo in
  if Array.length t.splits <> r then invalid_arg "Superschedule: splits rank mismatch";
  Array.iter (fun s -> if s < 1 then invalid_arg "Superschedule: split < 1") t.splits;
  if not (Format_abs.Spec.is_permutation (2 * r) t.compute_order) then
    invalid_arg "Superschedule: compute_order not a permutation";
  if not (Format_abs.Spec.is_permutation (2 * r) t.a_order) then
    invalid_arg "Superschedule: a_order not a permutation";
  if Array.length t.a_formats <> 2 * r then
    invalid_arg "Superschedule: a_formats length mismatch";
  if t.par_var < 0 || t.par_var >= 2 * r then
    invalid_arg "Superschedule: par_var out of range";
  if not (List.mem t.par_var (Algorithm.parallel_candidates t.algo)) then
    invalid_arg "Superschedule: par_var not parallelizable for this algorithm";
  if t.chunk < 1 then invalid_arg "Superschedule: chunk < 1"

(* Unique identity string; used for deduplication in the KNN graph and for
   memoizing ground-truth runtimes. *)
let key t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Algorithm.name t.algo);
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "|s%d" s)) t.splits;
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "|c%d" v)) t.compute_order;
  Buffer.add_string buf (Printf.sprintf "|p%d|t%s|k%d" t.par_var
                           (threads_name t.threads) t.chunk);
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "|o%d" v)) t.a_order;
  Array.iter
    (fun f -> Buffer.add_char buf (Format_abs.Levelfmt.to_char f))
    t.a_formats;
  Buffer.contents buf

let equal a b = key a = key b

let describe t =
  let names = Algorithm.dim_names t.algo in
  let var v = Format_abs.Spec.var_name ~dim_names:names v in
  Printf.sprintf "%s splits=[%s] loop=[%s] par=%s(%s,chunk=%d) A=[%s/%s]"
    (Algorithm.name t.algo)
    (String.concat ";" (Array.to_list (Array.map string_of_int t.splits)))
    (String.concat ">" (Array.to_list (Array.map var t.compute_order)))
    (var t.par_var) (threads_name t.threads) t.chunk
    (String.concat ">" (Array.to_list (Array.map var t.a_order)))
    (String.concat ""
       (Array.to_list
          (Array.map
             (fun f -> String.make 1 (Format_abs.Levelfmt.to_char f))
             t.a_formats)))

let pp ppf t = Fmt.string ppf (describe t)

(* --- Canonical schedules --- *)

(* The paper's FixedCSR baseline: UC (CSR) / CCC (CSF for MTTKRP), default
   concordant loop order, parallel outer rows, all threads, OpenMP chunk 128
   for SpMV and 32 otherwise (§5.1). *)
let fixed_default algo =
  let r = Algorithm.sparse_rank algo in
  let splits = Array.make r 1 in
  let order =
    Array.init (2 * r) (fun i ->
        if i < r then Format_abs.Spec.top_var i else Format_abs.Spec.bottom_var (i - r))
  in
  let formats =
    match algo with
    | Algorithm.Mttkrp _ ->
        (* CSF: CCC on the top levels. *)
        Array.init (2 * r) (fun i -> if i < r then Format_abs.Levelfmt.C else Format_abs.Levelfmt.U)
    | Algorithm.Spmv | Algorithm.Spmm _ | Algorithm.Sddmm _ ->
        Array.init (2 * r) (fun i ->
            if i = 0 then Format_abs.Levelfmt.U
            else if i < r then Format_abs.Levelfmt.C
            else Format_abs.Levelfmt.U)
  in
  {
    algo;
    splits;
    compute_order = Array.copy order;
    par_var = Format_abs.Spec.top_var 0;
    threads = Full;
    (* Paper defaults are 128 (SpMV) / 32 (others); scaled by 8 with the
       corpus dimensions so the chunks-per-thread ratio matches. *)
    chunk = (match algo with Algorithm.Spmv -> 16 | _ -> 4);
    a_order = order;
    a_formats = formats;
  }

(* A schedule whose format is [spec]-shaped with a concordant loop order —
   used by format-only tuning (Table 1's "F." column keeps the iteration
   order concordant with the tuned format). *)
let concordant_with_format algo ~splits ~a_order ~a_formats =
  let base = fixed_default algo in
  { base with splits; a_order; a_formats; compute_order = Array.copy a_order }
