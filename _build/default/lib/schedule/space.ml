(* The SuperSchedule parameter space (Table 3) with uniform sampling and the
   mutation/crossover operators the black-box search baselines use. *)

open Sptensor

(* Power-of-two split sizes 1..4096 (the paper goes to 32768 on full-size
   SuiteSparse; our corpus is ~8x smaller). *)
let split_options = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]

(* OpenMP dynamic chunk sizes.  The paper sweeps 1..256 on matrices with up
   to 131,072 rows; our corpus is ~8x smaller, so the menu is scaled the same
   way the cache sizes are (DESIGN.md) to keep chunks-per-thread ratios
   comparable. *)
let chunk_options = [| 1; 2; 4; 8; 16; 32; 64 |]

let threads_options = [| Superschedule.Half; Superschedule.Full |]

let log2_index options v =
  let rec find i = if i >= Array.length options then None
    else if options.(i) = v then Some i else find (i + 1) in
  find 0

(* Splits larger than the dimension are degenerate; cap the menu per dim. *)
let split_options_for_dim dim =
  let opts = Array.to_list split_options in
  Array.of_list (List.filter (fun s -> s = 1 || s <= dim) opts)

let sample rng (algo : Algorithm.t) ~(dims : int array) : Superschedule.t =
  let r = Algorithm.sparse_rank algo in
  let splits =
    Array.init r (fun d -> Rng.choose rng (split_options_for_dim dims.(d)))
  in
  let compute_order = Rng.permutation rng (2 * r) in
  let a_order = Rng.permutation rng (2 * r) in
  let a_formats =
    Array.init (2 * r) (fun _ -> Rng.choose rng Format_abs.Levelfmt.all)
  in
  let candidates = Array.of_list (Algorithm.parallel_candidates algo) in
  {
    Superschedule.algo;
    splits;
    compute_order;
    par_var = Rng.choose rng candidates;
    threads = Rng.choose rng threads_options;
    chunk = Rng.choose rng chunk_options;
    a_order;
    a_formats;
  }

(* Swap two positions of a permutation. *)
let perm_mutate rng perm =
  let p = Array.copy perm in
  let n = Array.length p in
  if n >= 2 then begin
    let a = Rng.int rng n in
    let b = Rng.int rng n in
    let tmp = p.(a) in
    p.(a) <- p.(b);
    p.(b) <- tmp
  end;
  p

(* Change one parameter at random; used by the OpenTuner-like ensemble. *)
let mutate rng ~(dims : int array) (s : Superschedule.t) : Superschedule.t =
  let r = Algorithm.sparse_rank s.Superschedule.algo in
  match Rng.int rng 7 with
  | 0 ->
      let d = Rng.int rng r in
      let splits = Array.copy s.splits in
      splits.(d) <- Rng.choose rng (split_options_for_dim dims.(d));
      { s with splits }
  | 1 -> { s with compute_order = perm_mutate rng s.compute_order }
  | 2 -> { s with a_order = perm_mutate rng s.a_order }
  | 3 ->
      let a_formats = Array.copy s.a_formats in
      let lvl = Rng.int rng (2 * r) in
      a_formats.(lvl) <-
        (match a_formats.(lvl) with
        | Format_abs.Levelfmt.U -> Format_abs.Levelfmt.C
        | Format_abs.Levelfmt.C -> Format_abs.Levelfmt.U);
      { s with a_formats }
  | 4 ->
      let candidates = Array.of_list (Algorithm.parallel_candidates s.algo) in
      { s with par_var = Rng.choose rng candidates }
  | 5 -> { s with threads = Rng.choose rng threads_options }
  | _ -> { s with chunk = Rng.choose rng chunk_options }

(* Uniform parameter-wise crossover (permutations taken whole from a parent). *)
let crossover rng (a : Superschedule.t) (b : Superschedule.t) : Superschedule.t =
  let pick x y = if Rng.bool rng then x else y in
  {
    Superschedule.algo = a.Superschedule.algo;
    splits = Array.mapi (fun d sa -> pick sa b.Superschedule.splits.(d)) a.Superschedule.splits;
    compute_order =
      Array.copy (pick a.Superschedule.compute_order b.Superschedule.compute_order);
    par_var = pick a.Superschedule.par_var b.Superschedule.par_var;
    threads = pick a.Superschedule.threads b.Superschedule.threads;
    chunk = pick a.Superschedule.chunk b.Superschedule.chunk;
    a_order = Array.copy (pick a.Superschedule.a_order b.Superschedule.a_order);
    a_formats = Array.copy (pick a.Superschedule.a_formats b.Superschedule.a_formats);
  }

(* Structured samples: a canonical format family with randomized scheduling
   parameters.  Uniform sampling almost never draws a concordant loop order
   (1/(2r)! per tensor), so at our corpus scale — hundreds of tuples per
   matrix instead of the paper's 2M total — we mix a fraction of
   family-seeded samples in so the dataset spans the useful region of the
   space as the paper's giant uniform corpus does. *)
let sample_guided rng (algo : Algorithm.t) ~(dims : int array) : Superschedule.t =
  let r = Algorithm.sparse_rank algo in
  let top = Format_abs.Spec.top_var and bot = Format_abs.Spec.bottom_var in
  let u = Format_abs.Levelfmt.U and c = Format_abs.Levelfmt.C in
  let base =
    if r = 3 then begin
      (* CSF or block-CSF *)
      let b = Rng.choose rng [| 1; 1; 2; 4 |] in
      if b = 1 then Superschedule.fixed_default algo
      else
        Superschedule.concordant_with_format algo ~splits:[| b; b; b |]
          ~a_order:[| top 0; top 1; top 2; bot 0; bot 1; bot 2 |]
          ~a_formats:[| c; c; c; u; u; u |]
    end
    else begin
      match Rng.int rng 5 with
      | 0 -> Superschedule.fixed_default algo (* CSR *)
      | 1 ->
          (* BCSR / UCU row blocking *)
          let bi = Rng.choose rng [| 2; 4; 8; 16; 32 |] in
          let bk = Rng.choose rng [| 1; 1; bi |] in
          Superschedule.concordant_with_format algo ~splits:[| bi; bk |]
            ~a_order:[| top 0; top 1; bot 0; bot 1 |] ~a_formats:[| u; c; u; u |]
      | 2 ->
          (* sparse block UUC with a large column split *)
          let bk = Rng.choose rng [| 128; 256; 512; 1024; 2048 |] in
          Superschedule.concordant_with_format algo ~splits:[| 1; bk |]
            ~a_order:[| top 1; top 0; bot 1; bot 0 |] ~a_formats:[| u; u; c; u |]
      | 3 ->
          (* doubly-blocked compressed (CUCC): row blocks of compressed block
             rows with a compressed column split — the sparsine-style format
             §5.2.1's cache analysis favours on large scattered matrices *)
          let bi = Rng.choose rng [| 8; 16; 32; 64 |] in
          let bk = Rng.choose rng [| 128; 256; 512; 1024 |] in
          Superschedule.concordant_with_format algo ~splits:[| bi; bk |]
            ~a_order:[| top 0; top 1; bot 0; bot 1 |] ~a_formats:[| c; u; c; c |]
      | _ ->
          (* CSC *)
          Superschedule.concordant_with_format algo ~splits:[| 1; 1 |]
            ~a_order:[| top 1; top 0; bot 1; bot 0 |] ~a_formats:[| u; c; u; u |]
    end
  in
  let candidates = Array.of_list (Algorithm.parallel_candidates algo) in
  let s =
    {
      base with
      Superschedule.chunk = Rng.choose rng chunk_options;
      threads = Rng.choose rng threads_options;
      par_var = Rng.choose rng candidates;
    }
  in
  (* Occasionally drift away from the family. *)
  if Rng.float rng < 0.3 then mutate rng ~dims s else s

(* Distinct samples (by schedule key) for datasets and the KNN-graph corpus;
   [guided_fraction] controls the uniform/structured mix. *)
let sample_distinct ?(guided_fraction = 0.4) rng algo ~dims ~count =
  let seen = Hashtbl.create (2 * count) in
  let out = ref [] and n = ref 0 and attempts = ref 0 in
  while !n < count && !attempts < 100 * count do
    incr attempts;
    let s =
      if Rng.float rng < guided_fraction then sample_guided rng algo ~dims
      else sample rng algo ~dims
    in
    let k = Superschedule.key s in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out := s :: !out;
      incr n
    end
  done;
  List.rev !out

(* Log-size of the discrete space (for reporting). *)
let log10_size (algo : Algorithm.t) ~(dims : int array) =
  let r = Algorithm.sparse_rank algo in
  let log10 x = log x /. log 10.0 in
  let splits =
    Array.fold_left
      (fun acc d -> acc +. log10 (float_of_int (Array.length (split_options_for_dim d))))
      0.0 dims
  in
  let fact n =
    let rec go acc i = if i <= 1 then acc else go (acc +. log10 (float_of_int i)) (i - 1) in
    go 0.0 n
  in
  splits +. (2.0 *. fact (2 * r))
  +. log10 (float_of_int (List.length (Algorithm.parallel_candidates algo)))
  +. log10 2.0
  +. log10 (float_of_int (Array.length chunk_options))
  +. (float_of_int (2 * r) *. log10 2.0)
