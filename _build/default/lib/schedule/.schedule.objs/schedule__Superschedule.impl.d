lib/schedule/superschedule.ml: Algorithm Array Buffer Fmt Format_abs List Printf String
