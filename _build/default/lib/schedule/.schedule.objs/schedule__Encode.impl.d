lib/schedule/encode.ml: Algorithm Array Float Format_abs Space Superschedule
