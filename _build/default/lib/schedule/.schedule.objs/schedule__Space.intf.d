lib/schedule/space.mli: Algorithm Rng Sptensor Superschedule
