lib/schedule/algorithm.mli: Format
