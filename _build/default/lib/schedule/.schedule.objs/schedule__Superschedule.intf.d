lib/schedule/superschedule.mli: Algorithm Format Format_abs
