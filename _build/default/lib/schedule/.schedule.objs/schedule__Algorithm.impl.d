lib/schedule/algorithm.ml: Fmt Format_abs List
