lib/schedule/encode.mli: Superschedule
