lib/schedule/space.ml: Algorithm Array Format_abs Hashtbl List Rng Sptensor Superschedule
