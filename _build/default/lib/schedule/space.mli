(** The SuperSchedule parameter space (Table 3): menus, uniform and guided
    sampling, and the mutation/crossover operators the black-box search
    baselines use. *)

open Sptensor

val split_options : int array
(** Power-of-two split sizes (1..4096; the paper sweeps to 32768 on full-size
    SuiteSparse). *)

val chunk_options : int array
(** OpenMP dynamic chunk sizes, scaled with the corpus dimensions like the
    cache sizes (DESIGN.md). *)

val threads_options : Superschedule.threads array

val log2_index : int array -> int -> int option
(** Position of a value in a menu array. *)

val split_options_for_dim : int -> int array
(** The split menu restricted to sizes no larger than the dimension. *)

val sample : Rng.t -> Algorithm.t -> dims:int array -> Superschedule.t
(** Uniform sample over the whole space. *)

val perm_mutate : Rng.t -> int array -> int array
(** Swap two positions of a permutation (pure). *)

val mutate : Rng.t -> dims:int array -> Superschedule.t -> Superschedule.t
(** Change one parameter at random. *)

val crossover : Rng.t -> Superschedule.t -> Superschedule.t -> Superschedule.t
(** Uniform parameter-wise crossover (permutations inherited whole). *)

val sample_guided : Rng.t -> Algorithm.t -> dims:int array -> Superschedule.t
(** A canonical format family (CSR / BCSR / sparse-block / CSC, or CSF
    variants at rank 3) with randomized scheduling parameters — the corpus
    mix-in that compensates for sampling hundreds instead of the paper's
    millions of tuples (uniform draws are concordant with probability
    1/(2r)! per tensor). *)

val sample_distinct :
  ?guided_fraction:float ->
  Rng.t -> Algorithm.t -> dims:int array -> count:int -> Superschedule.t list
(** Distinct samples by schedule key; [guided_fraction] (default 0.4)
    controls the uniform/structured mix. *)

val log10_size : Algorithm.t -> dims:int array -> float
(** log10 of the discrete space size (for reporting). *)
