(** Encoding of a SuperSchedule into the program embedder's inputs (Fig. 11):
    categorical parameters as one-hot vectors (for learnable lookup tables),
    permutation parameters as flattened permutation matrices (for linear-ReLU
    stacks). *)

type t = {
  split_onehots : float array array;  (** rank x |split_options| *)
  compute_perm : float array;  (** (2r)^2 row-major permutation matrix *)
  a_perm : float array;  (** (2r)^2 *)
  a_format_onehot : float array;  (** 2r x 2, flattened *)
  par_onehot : float array;  (** 2r *)
  threads_onehot : float array;  (** 2 *)
  chunk_onehot : float array;  (** |chunk_options| *)
}

val onehot : int -> int -> float array

val perm_matrix : int array -> float array

val split_index : int -> int
(** Menu slot of a split size; off-menu sizes map to the nearest power of
    two. *)

val chunk_index : int -> int

val encode : Superschedule.t -> t

val to_flat : t -> float array
(** Flat concatenation of all segments. *)

val flat_dim : rank:int -> int
