(** Analytic cost simulator: the reproduction's stand-in for running
    TACO-generated code on hardware (DESIGN.md's central substitution).

    The model derives the loop nest a SuperSchedule describes and prices it
    with a work model over materialized slots (dense-block zero-fill pays),
    the icc-like SIMD threshold (Fig. 14), a hierarchical reuse-distance
    cache analysis (what rewards UUC sparse blocking on scattered matrices,
    §5.2.1), binary-search penalties for discordant traversal (§3.1), and a
    simulated OpenMP dynamic scheduler over the parallel variable's work
    histogram (Table 6's dominant factor).  Absolute seconds are a model;
    the *ordering* of schedules is the reproduced signal. *)

open Schedule

type breakdown = {
  seconds : float;  (** final estimate *)
  serial_seconds : float;
  compute_seconds : float;
  memory_seconds : float;
  search_seconds : float;  (** discordant-traversal penalty *)
  makespan_seconds : float;  (** dynamic-scheduling simulation result *)
  dram_bytes : float;
  flops : float;
  vec_factor : float;
  nvals : float;  (** materialized slots including zero fill *)
  discordant : int;
  threads_used : int;
}

val estimate : Machine.t -> Workload.t -> Superschedule.t -> breakdown
(** Full cost breakdown.  Raises [Invalid_argument] on malformed schedules. *)

val runtime : Machine.t -> Workload.t -> Superschedule.t -> float
(** [= (estimate ...).seconds] — the ground-truth runtime of the pipeline. *)

val convert_time : Machine.t -> Workload.t -> Superschedule.t -> float
(** Format-conversion time model (sort + materialization), used by the
    end-to-end accounting of Fig. 17 and Table 8. *)
