(* Machine descriptions for the analytic cost simulator.

   Two configurations stand in for the paper's two testbeds (§5.1, §5.5):
   - [intel_like]: dual-socket 24-core/48-thread Xeon E5-2680v3 with icc
     (icc's SIMD heuristic vectorizes dense blocks only from size 16, Fig. 14);
   - [amd_like]: 8-core/16-thread EPYC 7R32 with gcc (smaller LLC, different
     vectorization behaviour, lower bandwidth).
   The differences are what make Table 7's cross-hardware transfer matrix
   non-trivial: the best chunk sizes, blocking factors, and sparse-block split
   sizes differ between the two. *)

type cache = { size_bytes : float; bandwidth : float (* bytes/sec, aggregate *) }

type t = {
  name : string;
  freq_hz : float;
  cores : int;
  smt_threads : int;
  smt_scaling : float; (* throughput of smt_threads relative to cores, / cores *)
  flops_per_cycle : float; (* scalar FMA throughput per core *)
  simd_width : int; (* vector lanes once vectorization kicks in *)
  simd_threshold : int; (* contiguous extent needed for vectorization (Fig. 14) *)
  l1 : cache;
  l2 : cache;
  llc : cache;
  mem_bandwidth : float; (* bytes/sec, aggregate *)
  cache_line : int;
  chunk_overhead_sec : float; (* dynamic-scheduling cost per chunk dispatch *)
  parallel_region_sec : float; (* cost of entering a parallel region *)
  leaf_overhead_cycles : float; (* per materialized value slot *)
  level_iter_cycles : float; (* loop control per level position *)
  search_cost_cycles : float; (* binary-search probe on discordant traversal *)
}

let intel_like =
  {
    name = "intel-like";
    freq_hz = 2.5e9;
    cores = 24;
    smt_threads = 48;
    smt_scaling = 1.3;
    flops_per_cycle = 2.0;
    simd_width = 8;
    simd_threshold = 16;
    (* Cache sizes are scaled ~8x down with the corpus (DESIGN.md: matrices
       are ~8x smaller than SuiteSparse) so capacity effects — whether a
       dense-operand panel fits — land at the same relative points. *)
    l1 = { size_bytes = 16e3; bandwidth = 2000e9 };
    l2 = { size_bytes = 64e3; bandwidth = 1000e9 };
    llc = { size_bytes = 4e6; bandwidth = 600e9 };
    mem_bandwidth = 68e9;
    cache_line = 64;
    chunk_overhead_sec = 4e-7;
    parallel_region_sec = 4e-6;
    leaf_overhead_cycles = 2.0;
    level_iter_cycles = 1.5;
    search_cost_cycles = 25.0;
  }

let amd_like =
  {
    name = "amd-like";
    freq_hz = 3.0e9;
    cores = 8;
    smt_threads = 16;
    smt_scaling = 1.25;
    flops_per_cycle = 2.0;
    simd_width = 4;
    simd_threshold = 4;
    l1 = { size_bytes = 16e3; bandwidth = 800e9 };
    l2 = { size_bytes = 128e3; bandwidth = 400e9 };
    llc = { size_bytes = 2e6; bandwidth = 200e9 };
    mem_bandwidth = 42e9;
    cache_line = 64;
    chunk_overhead_sec = 3e-7;
    parallel_region_sec = 3e-6;
    leaf_overhead_cycles = 2.0;
    level_iter_cycles = 1.5;
    search_cost_cycles = 25.0;
  }

(* Thread count and aggregate throughput scaling for a threads choice. *)
let thread_config t (choice : Schedule.Superschedule.threads) =
  match choice with
  | Schedule.Superschedule.Half -> (t.cores, float_of_int t.cores)
  | Schedule.Superschedule.Full -> (t.smt_threads, float_of_int t.cores *. t.smt_scaling)

let pp ppf t = Fmt.string ppf t.name
