lib/machine/machine.mli: Format Schedule
