lib/machine/costsim.mli: Machine Schedule Superschedule Workload
