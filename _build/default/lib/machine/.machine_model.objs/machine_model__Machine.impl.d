lib/machine/machine.ml: Fmt Schedule
