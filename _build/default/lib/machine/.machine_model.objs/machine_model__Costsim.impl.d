lib/machine/costsim.ml: Algorithm Array Float Format_abs List Machine Schedule Sptensor Superschedule Workload
