lib/machine/workload.ml: Array Buffer Coo Format_abs Hashtbl Sptensor Tensor3
