lib/machine/workload.mli: Coo Format_abs Hashtbl Sptensor Tensor3
