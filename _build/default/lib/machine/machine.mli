(** Machine descriptions for the analytic cost simulator.  Two configurations
    stand in for the paper's testbeds (§5.1, §5.5): [intel_like] (Xeon
    E5-2680v3 + icc) and [amd_like] (EPYC 7R32 + gcc).  Their differences —
    thread counts, LLC capacity, vector width and the vectorization
    threshold — are what make Table 7's cross-hardware transfer matrix
    non-trivial.  Cache sizes are scaled ~8x down with the corpus so
    capacity effects land at the same relative points (DESIGN.md). *)

type cache = { size_bytes : float; bandwidth : float  (** bytes/s, aggregate *) }

type t = {
  name : string;
  freq_hz : float;
  cores : int;
  smt_threads : int;
  smt_scaling : float;  (** throughput of smt_threads relative to cores *)
  flops_per_cycle : float;  (** scalar FMA throughput per core *)
  simd_width : int;  (** vector lanes once vectorization kicks in *)
  simd_threshold : int;  (** contiguous extent that triggers it (Fig. 14) *)
  l1 : cache;
  l2 : cache;
  llc : cache;
  mem_bandwidth : float;
  cache_line : int;
  chunk_overhead_sec : float;  (** dynamic-scheduling cost per chunk dispatch *)
  parallel_region_sec : float;  (** cost of entering a parallel region *)
  leaf_overhead_cycles : float;  (** per materialized value slot *)
  level_iter_cycles : float;  (** loop control per level position *)
  search_cost_cycles : float;  (** binary-search probe on discordant traversal *)
}

val intel_like : t

val amd_like : t

val thread_config : t -> Schedule.Superschedule.threads -> int * float
(** [(thread count, aggregate throughput in core-equivalents)] for a threads
    choice. *)

val pp : Format.formatter -> t -> unit
