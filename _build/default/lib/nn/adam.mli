(** Adam optimizer (Kingma & Ba) — the paper trains its cost model with Adam
    at learning rate 1e-4 (§4.1.3). *)

type t

val create :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> Param.t list -> t

val step : t -> unit
(** Applies one update from the accumulated gradients, then clears them. *)
