(* Global average pooling over a sparse feature map: mean per channel across
   sites.  WACONet pools after *every* layer and concatenates the results to
   compensate for its narrow channel width (Fig. 9). *)

type t = { mutable nsites : int; mutable channels : int }

let create () = { nsites = 0; channels = 0 }

let forward t (m : Smap.t) =
  let n = Smap.nsites m and c = m.Smap.channels in
  t.nsites <- n;
  t.channels <- c;
  let out = Array.make c 0.0 in
  if n > 0 then begin
    for s = 0 to n - 1 do
      for ch = 0 to c - 1 do
        out.(ch) <- out.(ch) +. m.Smap.feats.((s * c) + ch)
      done
    done;
    let scale = 1.0 /. float_of_int n in
    Array.iteri (fun ch v -> out.(ch) <- v *. scale) out
  end;
  out

(* d(feats) from d(pooled). *)
let backward t (dout : float array) =
  if Array.length dout <> t.channels then invalid_arg "Pool.backward: size mismatch";
  let n = t.nsites and c = t.channels in
  let din = Array.make (n * c) 0.0 in
  if n > 0 then begin
    let scale = 1.0 /. float_of_int n in
    for s = 0 to n - 1 do
      for ch = 0 to c - 1 do
        din.((s * c) + ch) <- dout.(ch) *. scale
      done
    done
  end;
  din
