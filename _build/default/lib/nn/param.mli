(** A trainable parameter tensor: flat data plus an accumulated gradient.
    Layers expose their parameters as [Param.t] lists so a single optimizer
    can drive any composition. *)

type t = { name : string; data : float array; grad : float array }

val create : name:string -> int -> t
(** Zero-initialized. *)

val xavier : Sptensor.Rng.t -> name:string -> fan_in:int -> fan_out:int -> int -> t
(** Glorot/Xavier-uniform initialization. *)

val zero_grad : t -> unit

val zero_grads : t list -> unit

val size : t -> int

val total_size : t list -> int

val dump : t -> Buffer.t -> unit

val grad_l2 : t list -> float
(** L2 norm over all accumulated gradients (training diagnostics). *)
