(** Elementwise activations with cached masks. *)

type relu

val relu_create : unit -> relu

val relu_forward : relu -> float array -> float array

val relu_backward : relu -> float array -> float array
(** Requires a preceding [relu_forward] of the same size. *)
