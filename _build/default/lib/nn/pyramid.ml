(* Coordinate pyramid: the chain of kernel maps a fixed conv stack induces on
   one input pattern.  Kernel maps depend only on coordinates — not weights or
   features — so the trainer builds each matrix's pyramid once and reuses it
   every epoch (this is where most sparse-conv time would otherwise go). *)

type t = {
  base : Smap.t; (* single-channel input map *)
  maps : Sparse_conv.kernel_map array; (* one per conv layer *)
}

(* [layers] gives (ksize, stride) per conv layer, in order. *)
let build (base : Smap.t) ~(layers : (int * int) list) =
  let maps = ref [] in
  let coords = ref base.Smap.coords in
  let h = ref base.Smap.h and w = ref base.Smap.w in
  List.iter
    (fun (ksize, stride) ->
      let map = Sparse_conv.build_map ~ksize ~stride !coords ~h:!h ~w:!w in
      maps := map :: !maps;
      coords := map.Sparse_conv.out_coords;
      h := map.Sparse_conv.out_h;
      w := map.Sparse_conv.out_w)
    layers;
  { base; maps = Array.of_list (List.rev !maps) }
