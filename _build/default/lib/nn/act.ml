(* Elementwise activations with cached masks. *)

type relu = { mutable mask : bool array }

let relu_create () = { mask = [||] }

let relu_forward t (x : float array) =
  let n = Array.length x in
  let mask = Array.make n false in
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if x.(i) > 0.0 then begin
      mask.(i) <- true;
      out.(i) <- x.(i)
    end
  done;
  t.mask <- mask;
  out

let relu_backward t (dout : float array) =
  if Array.length dout <> Array.length t.mask then
    invalid_arg "Act.relu_backward: size mismatch";
  Array.mapi (fun i g -> if t.mask.(i) then g else 0.0) dout
