(** A sparse 2-D feature map: the activation type flowing through WACONet.
    Sites are nonzero coordinates, each carrying a [channels]-vector stored
    site-major in [feats]. *)

type t = {
  h : int;
  w : int;
  coords : (int * int) array;
  channels : int;
  feats : float array;  (** length = nsites * channels *)
}

val nsites : t -> int

val default_max_sites : int
(** Site cap for the raw input map ([8192]): the CPU-budget stand-in for the
    paper's 10M-nnz GPU capacity. *)

val of_coo : ?max_sites:int -> Sptensor.Coo.t -> t
(** Single-channel input map of a pattern: one site per nonzero, feature 1.0.
    Patterns above [max_sites] are deterministically subsampled — unlike grid
    downsampling this keeps exact coordinates, so global structure and block
    alignment survive. *)

val downsample : Sptensor.Coo.t -> target:int -> t
(** The DenseConv baseline's input (§3.2.1): the pattern binned onto a
    [target x target] grid, every cell a site with feature [log1p count].
    Submanifold convolution over an all-sites map is exactly dense
    convolution. *)

val of_tensor3 : Sptensor.Tensor3.t -> t
(** 3-D tensors enter through their mode-0 flattening (SpTFS's approach). *)
