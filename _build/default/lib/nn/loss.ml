(* Pairwise ranking losses (§4.1.3).  The cost model is trained to order
   SuperSchedules, not to regress absolute runtimes:

     L = sum over pairs (s_j, s_k) of  sign(y_j - y_k) * phi(yhat_j - yhat_k)

   with phi the hinge max(0, 1 - x) (the paper's choice) or the logistic
   log(1 + exp(-x)).  [grad] returns dL/dyhat for a batch of pairs. *)

type phi = Hinge | Logistic

(* Returns (loss, dpred) where predictions are laid out pair-major:
   pred.(2*p) is yhat_j, pred.(2*p+1) is yhat_k. *)
let pairwise ?(phi = Hinge) ?(min_gap = 0.0) ~(truth : float array)
    ~(pred : float array) () =
  let n2 = Array.length pred in
  if n2 mod 2 <> 0 || Array.length truth <> n2 then
    invalid_arg "Loss.pairwise: expected pair-major layout";
  let npairs = n2 / 2 in
  let dpred = Array.make n2 0.0 in
  let loss = ref 0.0 in
  for p = 0 to npairs - 1 do
    let yj = truth.(2 * p) and yk = truth.((2 * p) + 1) in
    let hj = pred.(2 * p) and hk = pred.((2 * p) + 1) in
    (* sign(y_j - y_k): per the paper, 1 when j is slower, else 0 — pairs are
       oriented so the slower schedule must be predicted larger by margin 1. *)
    let sign = if yj -. yk > min_gap then 1.0 else 0.0 in
    if sign > 0.0 then begin
      let x = hj -. hk in
      match phi with
      | Hinge ->
          if 1.0 -. x > 0.0 then begin
            loss := !loss +. (1.0 -. x);
            dpred.(2 * p) <- dpred.(2 * p) -. 1.0;
            dpred.((2 * p) + 1) <- dpred.((2 * p) + 1) +. 1.0
          end
      | Logistic ->
          let l = log (1.0 +. exp (-.x)) in
          loss := !loss +. l;
          let g = -.(1.0 /. (1.0 +. exp x)) in
          dpred.(2 * p) <- dpred.(2 * p) +. g;
          dpred.((2 * p) + 1) <- dpred.((2 * p) + 1) -. g
      end
  done;
  let scale = 1.0 /. float_of_int (max 1 npairs) in
  Array.iteri (fun i g -> dpred.(i) <- g *. scale) dpred;
  (!loss *. scale, dpred)

(* Fraction of pairs ranked correctly — the accuracy metric reported alongside
   the loss curves. *)
let pair_accuracy ~(truth : float array) ~(pred : float array) =
  let n2 = Array.length pred in
  let npairs = n2 / 2 in
  let correct = ref 0 and counted = ref 0 in
  for p = 0 to npairs - 1 do
    let dy = truth.(2 * p) -. truth.((2 * p) + 1) in
    if Float.abs dy > 0.0 then begin
      incr counted;
      let dh = pred.(2 * p) -. pred.((2 * p) + 1) in
      if (dy > 0.0 && dh > 0.0) || (dy < 0.0 && dh < 0.0) then incr correct
    end
  done;
  if !counted = 0 then 1.0 else float_of_int !correct /. float_of_int !counted
