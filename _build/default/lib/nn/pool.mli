(** Global average pooling over a sparse feature map: per-channel mean across
    sites.  WACONet pools after every layer and concatenates (Fig. 9). *)

type t

val create : unit -> t

val forward : t -> Smap.t -> float array
(** Length = channels. *)

val backward : t -> float array -> float array
(** d(feats) from d(pooled); requires a preceding forward. *)
