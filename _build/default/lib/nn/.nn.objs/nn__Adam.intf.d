lib/nn/adam.mli: Param
