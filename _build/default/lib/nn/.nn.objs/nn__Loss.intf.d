lib/nn/loss.mli:
