lib/nn/param.mli: Buffer Sptensor
