lib/nn/sparse_conv.ml: Array Hashtbl List Param Smap
