lib/nn/mlp.mli: Param Sptensor
