lib/nn/smap.mli: Sptensor
