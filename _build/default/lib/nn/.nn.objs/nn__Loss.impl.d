lib/nn/loss.ml: Array Float
