lib/nn/pyramid.mli: Smap Sparse_conv
