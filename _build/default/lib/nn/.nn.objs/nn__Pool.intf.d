lib/nn/pool.mli: Smap
