lib/nn/param.ml: Array Buffer List Printf Sptensor
