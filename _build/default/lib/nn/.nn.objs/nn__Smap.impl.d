lib/nn/smap.ml: Array Sptensor
