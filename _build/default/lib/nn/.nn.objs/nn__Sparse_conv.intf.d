lib/nn/sparse_conv.mli: Param Smap Sptensor
