lib/nn/linear.ml: Array Param
