lib/nn/act.ml: Array
