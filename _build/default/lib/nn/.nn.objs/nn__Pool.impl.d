lib/nn/pool.ml: Array Smap
