lib/nn/mlp.ml: Act Array Linear List Printf
