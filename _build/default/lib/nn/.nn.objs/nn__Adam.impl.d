lib/nn/adam.ml: Array List Param
