lib/nn/linear.mli: Param Sptensor
