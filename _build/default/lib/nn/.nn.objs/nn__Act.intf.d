lib/nn/act.mli:
