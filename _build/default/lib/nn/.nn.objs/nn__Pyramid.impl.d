lib/nn/pyramid.ml: Array List Smap Sparse_conv
