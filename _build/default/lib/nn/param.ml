(* A trainable parameter tensor: flat data plus an accumulated gradient.
   All layers expose their parameters as [Param.t] lists so one optimizer can
   drive any composition of layers. *)


type t = { name : string; data : float array; grad : float array }

let create ~name n = { name; data = Array.make n 0.0; grad = Array.make n 0.0 }

(* Glorot/Xavier-uniform initialization. *)
let xavier rng ~name ~fan_in ~fan_out n =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  {
    name;
    data = Array.init n (fun _ -> Sptensor.Rng.float_in rng (-.bound) bound);
    grad = Array.make n 0.0;
  }

let zero_grad t = Array.fill t.grad 0 (Array.length t.grad) 0.0

let zero_grads params = List.iter zero_grad params

let size t = Array.length t.data

let total_size params = List.fold_left (fun acc p -> acc + size p) 0 params

(* Flat serialization used by model save/load. *)
let dump t buf =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" t.name (size t));
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%.17g\n" v)) t.data

let grad_l2 params =
  sqrt
    (List.fold_left
       (fun acc p -> Array.fold_left (fun a g -> a +. (g *. g)) acc p.grad)
       0.0 params)
