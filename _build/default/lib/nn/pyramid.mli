(** Coordinate pyramid: the chain of kernel maps a fixed conv stack induces
    on one input pattern.  Kernel maps depend only on coordinates — not
    weights or features — so the trainer builds each matrix's pyramid once
    and reuses it every epoch. *)

type t = {
  base : Smap.t;  (** the single-channel input map *)
  maps : Sparse_conv.kernel_map array;  (** one per conv layer *)
}

val build : Smap.t -> layers:(int * int) list -> t
(** [layers] gives (ksize, stride) per conv layer in order. *)
