(** Pairwise ranking losses (§4.1.3): the cost model learns to *order*
    SuperSchedules, not to regress absolute runtimes. *)

type phi = Hinge | Logistic

val pairwise :
  ?phi:phi ->
  ?min_gap:float ->
  truth:float array ->
  pred:float array ->
  unit ->
  float * float array
(** [(loss, d pred)] over pair-major arrays: index [2p] holds the pair's
    first element, [2p+1] the second.  A pair contributes when
    [truth.(2p) - truth.(2p+1) > min_gap] (the paper's
    [sign(y_j - y_k) * phi(yhat_j - yhat_k)] with the hinge
    [max 0 (1 - x)]).  [min_gap] (default 0) suppresses noisy near-tie
    pairs. *)

val pair_accuracy : truth:float array -> pred:float array -> float
(** Fraction of (non-tied) pairs ranked correctly. *)
