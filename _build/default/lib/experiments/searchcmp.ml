(* Fig. 16: search-strategy exploration on the bcsstk29 analogue.

   (a) best predicted cost vs trials, and wall time, for ANNS vs the
   HyperOpt-like TPE and the OpenTuner-like bandit ensemble — all searching
   the *same trained SpMM cost model*.  The black-box optimizers must run the
   full cost model (embedder + predictor) per trial and pay metadata time;
   ANNS only runs the predictor tail over embeddings memorized in the KNN
   graph.
   (b) search-time breakdown: feature extraction vs ANNS as nnz grows. *)

open Sptensor
open Schedule
open Machine_model

let log10 x = log x /. log 10.0

let run_a () =
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let { Lab.model; index; _ } = Lab.trained machine algo in
  let rng = Lab.rng_for "searchcmp" in
  let m = Gen.bcsstk_like rng in
  let wl = Workload.of_coo ~id:"bcsstk" m in
  let input = Waco.Extractor.input_of_coo ~id:"bcsstk" m in
  let dims = wl.Workload.dims in
  Printf.printf "\n=== Figure 16a: search strategies on bcsstk29-analogue (SpMM) ===\n";
  (* Black-box strategies minimize the model's predicted cost. *)
  let feature = Waco.Costmodel.feature model input in
  ignore feature;
  let eval s = (Waco.Costmodel.predict model input [| s |]).(0) in
  let budget = Waco.Config.scaled 1000 in
  let results =
    [
      Blackbox.Strategies.random_search rng algo ~dims ~eval ~budget;
      Blackbox.Strategies.tpe rng algo ~dims ~eval ~budget;
      Blackbox.Strategies.bandit rng algo ~dims ~eval ~budget;
    ]
  in
  let t0 = Unix.gettimeofday () in
  let waco = Waco.Tuner.tune ~ef:64 model machine wl input index in
  let waco_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "%-15s %8s %12s %10s %10s %12s\n" "strategy" "trials" "best(pred)"
    "wall(s)" "eval(s)" "eval-frac";
  List.iter
    (fun (r : Blackbox.Blackbox_common.result) ->
      Printf.printf "%-15s %8d %12.4f %10.3f %10.3f %11.1f%%\n"
        r.Blackbox.Blackbox_common.name r.Blackbox.Blackbox_common.trials
        r.Blackbox.Blackbox_common.best_cost r.Blackbox.Blackbox_common.total_seconds
        r.Blackbox.Blackbox_common.eval_seconds
        (100.0 *. r.Blackbox.Blackbox_common.eval_seconds
         /. Float.max 1e-9 r.Blackbox.Blackbox_common.total_seconds)
    )
    results;
  let anns_eval_frac =
    100.0 *. waco.Waco.Tuner.search_seconds /. Float.max 1e-9 waco_wall
  in
  Printf.printf "%-15s %8d %12.4f %10.3f %10.3f %11.1f%%  (graph hops only)\n"
    "ANNS (WACO)" waco.Waco.Tuner.cost_evals waco.Waco.Tuner.best_predicted waco_wall
    waco.Waco.Tuner.search_seconds anns_eval_frac;
  (* convergence curves at a few checkpoints *)
  Printf.printf "best-so-far (predicted) at trial checkpoints:\n";
  let checkpoints = [ 10; 30; 100; 300; budget ] in
  List.iter
    (fun (r : Blackbox.Blackbox_common.result) ->
      Printf.printf "  %-15s" r.Blackbox.Blackbox_common.name;
      List.iter
        (fun cp ->
          let best =
            Array.fold_left
              (fun acc (t, c) -> if t <= cp then Float.min acc c else acc)
              infinity r.Blackbox.Blackbox_common.history
          in
          Printf.printf " %8.3f@%d" best cp)
        checkpoints;
      Printf.printf "\n")
    results;
  (* measured quality of each strategy's chosen schedule *)
  Printf.printf "measured runtime of chosen schedules (log10 s):\n";
  List.iter
    (fun (r : Blackbox.Blackbox_common.result) ->
      Printf.printf "  %-15s %8.3f\n" r.Blackbox.Blackbox_common.name
        (log10 (Costsim.runtime machine wl r.Blackbox.Blackbox_common.best)))
    results;
  Printf.printf "  %-15s %8.3f\n" "ANNS (WACO)" (log10 waco.Waco.Tuner.best_measured);
  Printf.printf
    "(paper: ANNS reaches the lowest cost within equal trials and far less time;\n OpenTuner comparable cost but much slower; eval fraction 93.9%% vs 3.9/8.1%%)\n"

let run_b () =
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let { Lab.model; index; _ } = Lab.trained machine algo in
  let rng = Lab.rng_for "searchcmp-b" in
  Printf.printf "\n=== Figure 16b: WACO search-time breakdown vs nnz ===\n";
  Printf.printf "%10s %14s %14s %12s\n" "nnz" "feature(s)" "ANNS(s)" "feat-frac";
  List.iter
    (fun nnz ->
      let n = max 256 (nnz / 8) in
      let m = Gen.uniform rng ~nrows:n ~ncols:n ~nnz in
      let id = Printf.sprintf "bd-%d" nnz in
      let wl = Workload.of_coo ~id m in
      let input = Waco.Extractor.input_of_coo ~id m in
      Waco.Costmodel.clear_feature_cache model;
      let r = Waco.Tuner.tune model machine wl input index in
      Printf.printf "%10d %14.4f %14.4f %11.1f%%\n" nnz r.Waco.Tuner.feature_seconds
        r.Waco.Tuner.search_seconds
        (100.0 *. r.Waco.Tuner.feature_seconds
         /. Float.max 1e-9 (r.Waco.Tuner.feature_seconds +. r.Waco.Tuner.search_seconds)))
    (List.map Waco.Config.scaled [ 2000; 8000; 30000; 100000; 300000 ]);
  Printf.printf
    "(paper: ANNS dominates below ~1.5M nnz; feature extraction dominates beyond,\n because sparse convolution cost scales with nnz)\n"

let run () =
  run_a ();
  run_b ()
