(* Table 6: where do WACO's wins come from?  For test matrices with >1.5x
   speedup over FixedCSR, classify the winning SuperSchedule by its dominant
   departure from the baseline: chunk-size tuning, dense blocking (and its
   fill), sparse blocking, or column parallelization (SDDMM only). *)

open Schedule
open Format_abs
open Machine_model

type factor =
  | Chunk_size
  | Dense_block_full (* inner U block, >= 50% filled *)
  | Dense_block_sparse (* inner U block, < 50% filled *)
  | Sparse_block
  | Parallel_column

let factor_name = function
  | Chunk_size -> "OpenMP Chunk Size"
  | Dense_block_full -> "Dense Block >50% Filled"
  | Dense_block_sparse -> "Dense Block <50% Filled"
  | Sparse_block -> "Sparse Block"
  | Parallel_column -> "Parallelize over Column"

(* Dominant factor of a winning schedule relative to the CSR default. *)
let classify (wl : Workload.t) (s : Superschedule.t) =
  let spec = Superschedule.to_spec s ~dims:wl.Workload.dims in
  let storage = Workload.storage wl spec in
  (* Inner (bottom-var) levels with extent > 1: blocking. *)
  let has_inner_u = ref false and has_inner_c = ref false in
  Array.iteri
    (fun lvl v ->
      if (not (Spec.var_is_top v)) && Spec.level_size spec lvl > 1 then
        match spec.Spec.formats.(lvl) with
        | Levelfmt.U -> has_inner_u := true
        | Levelfmt.C -> has_inner_c := true)
    spec.Spec.order;
  let col_parallel =
    match s.Superschedule.algo with
    | Algorithm.Sddmm _ -> Spec.var_dim s.Superschedule.par_var = 1
    | _ -> false
  in
  if col_parallel then Parallel_column
  else if !has_inner_u then begin
    if storage.Format_abs.Storage_model.fill_ratio >= 0.5 then Dense_block_full
    else Dense_block_sparse
  end
  else if !has_inner_c then Sparse_block
  else Chunk_size

let run () =
  let machine = Machine.intel_like in
  Printf.printf "\n=== Table 6: speedup-factor attribution (wins > 1.5x vs FixedCSR) ===\n";
  let algos = [ Algorithm.Spmv; Algorithm.Spmm 256; Algorithm.Sddmm 256 ] in
  Printf.printf "%-26s" "Factor";
  List.iter (fun a -> Printf.printf " %8s" (Algorithm.name a)) algos;
  Printf.printf "\n";
  let counts =
    List.map
      (fun algo ->
        let cases = Lab.tuned_cases machine algo in
        let winners =
          List.filter
            (fun (c : Lab.tuned_case) ->
              let csr = (Baselines.fixed_csr machine c.Lab.wl algo).Baselines.kernel_time in
              csr /. c.Lab.waco.Waco.Tuner.best_measured > 1.5)
            cases
        in
        let tally = Hashtbl.create 8 in
        List.iter
          (fun (c : Lab.tuned_case) ->
            let f = classify c.Lab.wl c.Lab.waco.Waco.Tuner.best in
            Hashtbl.replace tally f (1 + Option.value ~default:0 (Hashtbl.find_opt tally f)))
          winners;
        (tally, List.length winners))
      algos
  in
  List.iter
    (fun factor ->
      Printf.printf "%-26s" (factor_name factor);
      List.iter
        (fun (tally, total) ->
          match Hashtbl.find_opt tally factor with
          | Some c when total > 0 ->
              Printf.printf " %7.0f%%" (100.0 *. float_of_int c /. float_of_int total)
          | _ -> Printf.printf " %8s" "-")
        counts;
      Printf.printf "\n")
    [ Chunk_size; Dense_block_full; Dense_block_sparse; Sparse_block; Parallel_column ];
  let totals = List.map snd counts in
  Printf.printf "(matrices with >1.5x: %s)\n"
    (String.concat ", " (List.map string_of_int totals));
  Printf.printf "(paper: chunk 51/66/47%%, dense>50 30/26/15%%, dense<50 19/-/-%%, sparse -/8/-%%, column -/-/38%%)\n"
