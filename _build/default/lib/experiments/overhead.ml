(* Fig. 17 and Table 8: what does tuning cost, and when does it pay off?

   All times are expressed in units of one MKL-Naive kernel invocation (the
   paper's normalization).  WACO's overhead mixes real wall-clock seconds
   (feature extraction + graph search, measured on this host) with simulated
   seconds (the top-k measurement runs and the format conversion) — the same
   accounting the paper uses, since their search also runs on the host CPU
   while kernels run on the testbed. *)

open Sptensor
open Schedule
open Machine_model

type framework_cost = {
  fname : string;
  init_units : float; (* (tuning + conversion) / t_naive *)
  kernel_units : float; (* tuned kernel time / t_naive *)
}

let frameworks machine wl input algo (trained : Lab.trained) =
  let naive = (Baselines.mkl_naive machine wl algo).Baselines.kernel_time in
  let of_baseline (b : Baselines.tuned) =
    {
      fname = b.Baselines.name;
      init_units = (b.Baselines.tuning_time +. b.Baselines.convert_time) /. naive;
      kernel_units = b.Baselines.kernel_time /. naive;
    }
  in
  Waco.Costmodel.clear_feature_cache trained.Lab.model;
  let waco = Waco.Tuner.tune trained.Lab.model machine wl input trained.Lab.index in
  let waco_cost =
    {
      fname = "WACO";
      init_units = Waco.Tuner.tuning_overhead machine wl waco /. naive;
      kernel_units = waco.Waco.Tuner.best_measured /. naive;
    }
  in
  let mkl =
    match algo with
    | Algorithm.Spmv | Algorithm.Spmm _ -> [ of_baseline (Baselines.mkl machine wl algo) ]
    | _ -> []
  in
  (naive, mkl @ [ of_baseline (Baselines.best_format machine wl algo); waco_cost ])

let run_fig17 () =
  let machine = Machine.intel_like in
  let { Lab.model; index; _ } = Lab.trained machine (Algorithm.Spmm 256) in
  ignore model;
  ignore index;
  Printf.printf "\n=== Figure 17: tuning overhead vs speedup (over MKL-Naive) ===\n";
  List.iter
    (fun algo ->
      let trained = Lab.trained machine algo in
      let cases = Lab.tuned_cases machine algo in
      let take = List.filteri (fun i _ -> i < 12) cases in
      let acc = Hashtbl.create 4 in
      List.iter
        (fun (c : Lab.tuned_case) ->
          let _, fws = frameworks machine c.Lab.wl c.Lab.input algo trained in
          List.iter
            (fun f ->
              let overheads, speeds =
                Option.value ~default:([], []) (Hashtbl.find_opt acc f.fname)
              in
              Hashtbl.replace acc f.fname
                (f.init_units :: overheads, (1.0 /. f.kernel_units) :: speeds))
            fws)
        take;
      Printf.printf "%s:\n" (Algorithm.name algo);
      Hashtbl.iter
        (fun name (overheads, speeds) ->
          Printf.printf
            "  %-12s avg search time %10.0f naive-invocations, geomean speedup %5.2fx\n"
            name
            (List.fold_left ( +. ) 0.0 overheads /. float_of_int (List.length overheads))
            (Lab.geomean speeds))
        acc)
    [ Algorithm.Spmv; Algorithm.Spmm 256 ];
  Printf.printf
    "(paper: MKL 113 / BestFormat 277-614 / WACO ~5K invocations on SpMV;\n WACO pays the most tuning time for the highest speedup)\n"

(* Table 8: end-to-end execution time (tuning + conversion + N x kernel) for
   real-world N_runs scenarios, in MKL-Naive kernel units. *)
let run_table8 () =
  let machine = Machine.intel_like in
  let rng = Lab.rng_for "scenarios" in
  Printf.printf "\n=== Table 8: end-to-end scenarios (units = MKL-Naive kernel calls) ===\n";
  let run_side label algo m scenarios =
    let id = "scenario-" ^ label in
    let wl = Workload.of_coo ~id m in
    let input = Waco.Extractor.input_of_coo ~id m in
    let trained = Lab.trained machine algo in
    let naive, fws = frameworks machine wl input algo trained in
    ignore naive;
    let by_name n = List.find (fun f -> f.fname = n) fws in
    let waco = by_name "WACO" and bestf = by_name "BestFormat" in
    let mkl = try Some (by_name "MKL") with Not_found -> None in
    let crossover a b =
      (* N where a's end-to-end equals b's. *)
      if a.kernel_units >= b.kernel_units then None
      else
        Some
          (int_of_float
             ((a.init_units -. b.init_units) /. (b.kernel_units -. a.kernel_units)))
    in
    let end_to_end f n = f.init_units +. (float_of_int n *. f.kernel_units) in
    Printf.printf "--- (%s) ---\n" label;
    Printf.printf "%-24s %10s %12s %12s %12s\n" "Scenario" "N_runs" "WACO" "BestFormat"
      (match mkl with Some _ -> "MKL" | None -> "-");
    let print_row name n =
      let cell f = Printf.sprintf "%.0f" (end_to_end f n) in
      let cells =
        [ cell waco; cell bestf ] @ (match mkl with Some m -> [ cell m ] | None -> [])
      in
      let best = List.fold_left min infinity
          (List.map float_of_string cells) in
      let mark c = if float_of_string c = best then c ^ "*" else c in
      Printf.printf "%-24s %10d %12s %12s %12s\n" name n
        (mark (List.nth cells 0)) (mark (List.nth cells 1))
        (match mkl with Some _ -> mark (List.nth cells 2) | None -> "-")
    in
    print_row "Initial Cost" 0;
    List.iter (fun (name, n) -> print_row name n) scenarios;
    (match mkl with
    | Some m ->
        (match crossover waco m with
        | Some n -> print_row "WACO=MKL (crossover)" (max 0 n)
        | None -> Printf.printf "%-24s %10s (WACO kernel not faster than MKL here)\n"
                    "WACO=MKL" "-")
    | None -> ());
    (match crossover waco bestf with
    | Some n -> print_row "WACO=BestFormat" (max 0 n)
    | None ->
        Printf.printf "%-24s %10s (WACO kernel not faster than BestFormat here)\n"
          "WACO=BestFormat" "-")
  in
  (* (a) SpMV scenarios on a scattered structural-mechanics system (GMRES /
     mesh simulation solve such systems; sparsine is one). *)
  let system = Gen.sparsine_like rng in
  run_side "a: SpMV" Algorithm.Spmv system
    [ ("PageRank", 50); ("GMRES", 517_000); ("Mesh simulation", 1_800_000) ];
  (* (b) SpMM scenarios on a block-sparse weight matrix (pruned neural
     networks exhibit exactly this structure). *)
  let pruned = Gen.block_dense rng ~block:8 ~nrows:2048 ~ncols:2048 ~nnz:160000 in
  run_side "b: SpMM" (Algorithm.Spmm 256) pruned
    [ ("GNN", 10_000); ("Pruned NN", 1_000_000) ];
  Printf.printf
    "(* marks the winner; paper: MKL wins tiny N, BestFormat mid, WACO at large N)\n"

let run () =
  run_fig17 ();
  run_table8 ()
