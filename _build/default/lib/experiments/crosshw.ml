(* Table 7: cross-hardware generalization.  An SpMM cost model is trained
   against each machine configuration's simulator, then each model tunes the
   test matrices on each machine — the 2x2 matrix of geomean speedups over
   FixedCSR.  The diagonal should win (models are somewhat
   hardware-specific), but off-diagonal entries should still beat 1.0
   (general optimization patterns transfer, §5.5). *)

open Schedule
open Machine_model

let algo = Algorithm.Spmm 256

(* Tune [cases] with [model]+[index] (trained on some machine), but measure
   the chosen schedules on [target] machine. *)
let geomean_speedup (trained : Lab.trained) target =
  let speedups =
    List.map
      (fun (name, (wl, input)) ->
        ignore name;
        let r =
          Waco.Tuner.tune trained.Lab.model target wl input trained.Lab.index
        in
        let csr = (Baselines.fixed_csr target wl algo).Baselines.kernel_time in
        csr /. r.Waco.Tuner.best_measured)
      (Lab.test_cases algo)
  in
  Lab.geomean speedups

let run () =
  Printf.printf "\n=== Table 7: SpMM geomean speedup over FixedCSR, 2x2 train/test machines ===\n";
  let machines = [ Machine.intel_like; Machine.amd_like ] in
  let trained_models =
    List.map (fun m -> (m, Lab.trained m algo)) machines
  in
  Printf.printf "%-22s" "tested \\ trained on";
  List.iter (fun m -> Printf.printf " %12s" m.Machine.name) machines;
  Printf.printf "\n";
  List.iter
    (fun target ->
      Printf.printf "%-22s" target.Machine.name;
      List.iter
        (fun (_, tr) ->
          (* Tuning on a different machine: feature caches must not leak
             between targets (the model is shared). *)
          Waco.Costmodel.clear_feature_cache tr.Lab.model;
          Printf.printf " %11.2fx" (geomean_speedup tr target))
        trained_models;
      Printf.printf "\n")
    machines;
  Printf.printf "(paper: Intel/Intel 1.26, Intel/AMD 1.08, AMD/Intel 1.12, AMD/AMD 1.21)\n"
