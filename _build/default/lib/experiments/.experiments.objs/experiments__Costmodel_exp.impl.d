lib/experiments/costmodel_exp.ml: Algorithm Array Lab List Machine Machine_model Printf Schedule Waco
