lib/experiments/attribution.ml: Algorithm Array Baselines Format_abs Hashtbl Lab Levelfmt List Machine Machine_model Option Printf Schedule Spec String Superschedule Waco Workload
