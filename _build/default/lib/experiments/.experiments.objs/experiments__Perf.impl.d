lib/experiments/perf.ml: Algorithm Array Baselines Lab List Machine Machine_model Printf Schedule Waco
