lib/experiments/ablation.ml: Algorithm Baselines Costsim Float Lab List Machine Machine_model Printf Schedule Space Sptensor Waco Workload
