lib/experiments/simd.ml: Algorithm Costsim Format_abs Gen Lab List Machine Machine_model Printf Schedule Sptensor Superschedule Workload
