lib/experiments/crosshw.ml: Algorithm Baselines Lab List Machine Machine_model Printf Schedule Waco
