lib/experiments/lab.ml: Algorithm Array Char Float Gen Hashtbl Lazy List Machine Machine_model Printf Rng Schedule Sptensor String Sys Unix Waco Workload
