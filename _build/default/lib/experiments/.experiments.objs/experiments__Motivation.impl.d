lib/experiments/motivation.ml: Algorithm Costsim Format_abs Gen Lab List Machine Machine_model Option Printf Schedule Space Sptensor Superschedule Waco Workload
