lib/experiments/searchcmp.ml: Algorithm Array Blackbox Costsim Float Gen Lab List Machine Machine_model Printf Schedule Sptensor Unix Waco Workload
