lib/experiments/overhead.ml: Algorithm Baselines Gen Hashtbl Lab List Machine Machine_model Option Printf Schedule Sptensor Waco Workload
