(* Fig. 15: train/validation ranking loss of the SpMM cost model under the
   four feature extractors — HumanFeature, DenseConv (downsampled CNN),
   MinkowskiNet-like (stride-1 sparse convs) and WACONet.  The paper's claim:
   sparse convolution beats downsampling and hand-crafted statistics, and
   WACONet's strided pyramid beats plain submanifold stacks. *)

open Schedule
open Machine_model

let run () =
  let machine = Machine.intel_like in
  let algo = Algorithm.Spmm 32 in
  Printf.printf "\n=== Figure 15: train/val loss by feature extractor (SpMM) ===\n";
  let kinds =
    [ Waco.Extractor.Human; Waco.Extractor.Dense_conv; Waco.Extractor.Minkowski;
      Waco.Extractor.Waconet ]
  in
  let curves =
    List.map (fun kind -> (Lab.trained ~kind machine algo).Lab.curve) kinds
  in
  Printf.printf "%-6s" "epoch";
  List.iter
    (fun (c : Waco.Trainer.curve) ->
      Printf.printf " | %12s tr/val" c.Waco.Trainer.extractor)
    curves;
  Printf.printf "\n";
  let nep =
    List.fold_left (fun acc (c : Waco.Trainer.curve) ->
        min acc (Array.length c.Waco.Trainer.epochs))
      max_int curves
  in
  for e = 0 to nep - 1 do
    Printf.printf "%-6d" (e + 1);
    List.iter
      (fun (c : Waco.Trainer.curve) ->
        Printf.printf " | %9.3f / %9.3f" c.Waco.Trainer.train_loss.(e)
          c.Waco.Trainer.valid_loss.(e))
      curves;
    Printf.printf "\n"
  done;
  Printf.printf "final validation pair-ranking accuracy:";
  List.iter
    (fun (c : Waco.Trainer.curve) ->
      Printf.printf "  %s %.3f" c.Waco.Trainer.extractor
        c.Waco.Trainer.valid_acc.(Array.length c.Waco.Trainer.valid_acc - 1))
    curves;
  Printf.printf
    "\n(paper: WACONet & MinkowskiNet < DenseConv < HumanFeature; WACONet best,\n roughly halving the loss of DenseConv)\n"
