(* Ablations of the reproduction's own design choices (DESIGN.md §6):

   (a) corpus mix — guided_fraction 0 (pure uniform sampling, the paper's
       choice at 2M-tuple scale) vs 0.4 (our scale compensation): how good is
       the best schedule the corpus *contains* for unseen matrices?
   (b) ANNS beam width (ef) — retrieval quality vs predictor evaluations;
   (c) measured top-k — how many of the ANNS survivors need real measurement
       before the winner stabilizes (the paper measures 10). *)

open Schedule
open Machine_model

let algo = Algorithm.Spmm 256

let test_matrices () =
  let rng = Lab.rng_for "ablation" in
  List.init 8 (fun i ->
      (Printf.sprintf "abl%d" i,
       Sptensor.Gen.suite rng ~count:1 ~max_dim:2048 ~max_nnz:120000
       |> List.hd
       |> fun (g : Sptensor.Gen.named) -> g.Sptensor.Gen.matrix))

let run_corpus_mix () =
  let machine = Machine.intel_like in
  Printf.printf "\n--- (a) corpus sampling mix: oracle-in-corpus speedup vs FixedCSR ---\n";
  let rng = Lab.rng_for "ablation-corpus" in
  let mats = test_matrices () in
  Printf.printf "%18s %14s %14s\n" "guided_fraction" "geomean" "worst";
  List.iter
    (fun gf ->
      let speedups =
        List.map
          (fun (name, m) ->
            let wl = Workload.of_coo ~id:(name ^ string_of_float gf) m in
            let corpus =
              Space.sample_distinct ~guided_fraction:gf rng algo
                ~dims:wl.Workload.dims ~count:300
            in
            let oracle =
              List.fold_left
                (fun acc s -> Float.min acc (Costsim.runtime machine wl s))
                infinity corpus
            in
            (Baselines.fixed_csr machine wl algo).Baselines.kernel_time /. oracle)
          mats
      in
      Printf.printf "%18.1f %13.2fx %13.2fx\n" gf (Lab.geomean speedups)
        (List.fold_left Float.min infinity speedups))
    [ 0.0; 0.2; 0.4; 0.8 ];
  Printf.printf
    "(uniform sampling at our corpus size rarely contains concordant winners;\n the guided mix is the scale-compensation DESIGN.md documents)\n"

let run_ef_sweep () =
  let machine = Machine.intel_like in
  let { Lab.model; index; _ } = Lab.trained machine algo in
  Printf.printf "\n--- (b) ANNS beam width: measured winner vs predictor evaluations ---\n";
  Printf.printf "%6s %12s %16s %14s\n" "ef" "cost evals" "best (model s)" "vs ef=64";
  let mats = test_matrices () in
  let results =
    List.map
      (fun ef ->
        let times =
          List.map
            (fun (name, m) ->
              let id = Printf.sprintf "%s-ef%d" name ef in
              let wl = Workload.of_coo ~id m in
              let input = Waco.Extractor.input_of_coo ~id m in
              let r = Waco.Tuner.tune ~ef model machine wl input index in
              (r.Waco.Tuner.best_measured, r.Waco.Tuner.cost_evals))
            mats
        in
        let geo = Lab.geomean (List.map fst times) in
        let evals =
          List.fold_left (fun a (_, e) -> a + e) 0 times / List.length times
        in
        (ef, evals, geo))
      [ 4; 16; 64; 128 ]
  in
  let _, _, ref_geo = List.nth results 2 in
  List.iter
    (fun (ef, evals, geo) ->
      Printf.printf "%6d %12d %16.3e %13.2fx\n" ef evals geo (geo /. ref_geo))
    results

let run_topk () =
  let machine = Machine.intel_like in
  let { Lab.model; index; _ } = Lab.trained machine algo in
  Printf.printf "\n--- (c) measured top-k: winner quality vs measurement budget ---\n";
  Printf.printf "%6s %16s\n" "k" "geomean (model s)";
  let mats = test_matrices () in
  List.iter
    (fun k ->
      let times =
        List.map
          (fun (name, m) ->
            let id = Printf.sprintf "%s-k%d" name k in
            let wl = Workload.of_coo ~id m in
            let input = Waco.Extractor.input_of_coo ~id m in
            (Waco.Tuner.tune ~k model machine wl input index).Waco.Tuner.best_measured)
          mats
      in
      Printf.printf "%6d %16.3e\n" k (Lab.geomean times))
    [ 1; 3; 10; 20 ];
  Printf.printf "(k=1 trusts the model blindly; the paper measures the top 10)\n"

let run () =
  Printf.printf "\n=== Ablations (reproduction design choices) ===\n";
  run_corpus_mix ();
  run_ef_sweep ();
  run_topk ()
