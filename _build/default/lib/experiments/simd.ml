(* Fig. 14: the compiler's SIMD heuristic.  The paper disassembled icc's SpMV
   code for the UCU format and found vector FMA (vfmadd213ps) only once the
   dense block length b reaches 16 — a heuristic WACO's cost model learned to
   exploit.  Here we sweep b for SpMV with UCU blocking and report the machine
   model's vectorization factor and the resulting throughput on both machine
   configurations (gcc on the AMD box vectorizes earlier, with narrower
   vectors). *)

open Sptensor
open Schedule
open Machine_model

let run () =
  Printf.printf "\n=== Figure 14: SIMD heuristic vs dense block size (SpMV, UCU) ===\n";
  let rng = Lab.rng_for "simd" in
  let m = Gen.block_dense rng ~block:64 ~nrows:4096 ~ncols:4096 ~nnz:120000 in
  let wl = Workload.of_coo ~id:"simd" m in
  let algo = Algorithm.Spmv in
  Printf.printf "%6s | %18s | %18s\n" "b" "intel-like (icc)" "amd-like (gcc)";
  Printf.printf "%6s | %8s %9s | %8s %9s\n" "" "vec" "GFLOP/s" "vec" "GFLOP/s";
  List.iter
    (fun b ->
      (* UCU with row split b: levels i1(U) k1(C) i0(U); innermost loop i0. *)
      let s =
        Superschedule.concordant_with_format algo ~splits:[| b; 1 |]
          ~a_order:
            [| Format_abs.Spec.top_var 0; Format_abs.Spec.top_var 1;
               Format_abs.Spec.bottom_var 0; Format_abs.Spec.bottom_var 1 |]
          ~a_formats:
            [| Format_abs.Levelfmt.U; Format_abs.Levelfmt.C; Format_abs.Levelfmt.U;
               Format_abs.Levelfmt.U |]
      in
      (* Keep rows-per-chunk constant across b so load balancing does not
         confound the vectorization cliff. *)
      let s = { s with Superschedule.chunk = max 1 (32 / b) } in
      let cell machine =
        let est = Costsim.estimate machine wl s in
        (est.Costsim.vec_factor,
         est.Costsim.flops /. est.Costsim.seconds /. 1e9)
      in
      let vi, gi = cell Machine.intel_like in
      let va, ga = cell Machine.amd_like in
      Printf.printf "%6d | %7.0fx %9.2f | %7.0fx %9.2f\n" b vi gi va ga)
    [ 2; 4; 8; 12; 16; 24; 32; 64 ];
  Printf.printf
    "(paper: icc switches to vfmadd213ps at b=16; the model prices that cliff)\n"
