(* §2's motivating experiments on the pli / TSOPF / sparsine analogues:

   Table 1 — SpMM speedup over the CSR+default baseline when the tuning space
   is restricted to the format only (F.), the schedule only (S.), or opened to
   both (F.+S.).
   Table 2 — cross-application: the format+schedule co-optimized for matrix X
   applied to matrix Y (the off-diagonal penalty). *)

open Sptensor
open Schedule
open Machine_model

let algo = Algorithm.Spmm 256

let matrices () =
  let rng = Lab.rng_for "motivation" in
  [
    ("pli", Gen.pli_like rng);
    ("TSOPF", Gen.tsopf_like rng);
    ("sparsine", Gen.sparsine_like rng);
  ]

(* Oracle minimization over a sampled subset of a (restricted) space. *)
let oracle machine wl candidates =
  List.fold_left
    (fun (bs, bt) s ->
      let t = Costsim.runtime machine wl s in
      if t < bt then (Some s, t) else (bs, bt))
    (None, infinity) candidates
  |> fun (s, t) -> (Option.get s, t)

(* A systematic grid over the format families WACO's search reaches in
   practice (CSR/CSC, dense row/column blocking, sparse column blocking). *)
let format_grid () =
  let top = Format_abs.Spec.top_var and bot = Format_abs.Spec.bottom_var in
  let u = Format_abs.Levelfmt.U and c = Format_abs.Levelfmt.C in
  let row_major = [| top 0; top 1; bot 0; bot 1 |] in
  let col_major = [| top 1; top 0; bot 1; bot 0 |] in
  let mk splits a_order a_formats =
    Superschedule.concordant_with_format algo ~splits ~a_order ~a_formats
  in
  [ mk [| 1; 1 |] row_major [| u; c; u; u |] (* CSR *);
    mk [| 1; 1 |] col_major [| u; c; u; u |] (* CSC *) ]
  @ List.concat_map
      (fun b ->
        [ mk [| b; b |] row_major [| u; c; u; u |] (* BCSR bxb *);
          mk [| b; 1 |] row_major [| u; c; u; u |] (* UCU row blocks *) ])
      [ 2; 4; 8; 16; 32 ]
  @ List.map
      (fun bk -> mk [| 1; bk |] col_major [| u; u; c; u |] (* sparse block UUC *))
      [ 128; 256; 512; 1024; 2048; 4096 ]

(* Format-only: formats vary, iteration order stays concordant with the tuned
   format, scheduling parameters stay at the baseline defaults. *)
let format_only_candidates rng ~dims ~budget =
  let base = Superschedule.fixed_default algo in
  List.map (fun c -> { c with Superschedule.chunk = base.Superschedule.chunk })
    (format_grid ())
  @ List.filter_map
      (fun s ->
        let c =
          Superschedule.concordant_with_format algo ~splits:s.Superschedule.splits
            ~a_order:s.Superschedule.a_order ~a_formats:s.Superschedule.a_formats
        in
        Some { c with Superschedule.chunk = base.Superschedule.chunk })
      (Space.sample_distinct ~guided_fraction:0.5 rng algo ~dims ~count:budget)

(* Schedule-only: the format is pinned to CSR; loop order, parallelization,
   chunking and threads vary. *)
let schedule_only_candidates rng ~dims ~budget =
  let base = Superschedule.fixed_default algo in
  List.map
    (fun s ->
      {
        base with
        Superschedule.compute_order = s.Superschedule.compute_order;
        par_var = s.Superschedule.par_var;
        threads = s.Superschedule.threads;
        chunk = s.Superschedule.chunk;
      })
    (Space.sample_distinct rng algo ~dims ~count:budget)

(* Joint space: the format grid crossed with a scheduling grid, plus random
   samples for coverage beyond the grid. *)
let both_candidates rng ~dims ~budget =
  let grid =
    List.concat_map
      (fun fmt ->
        List.concat_map
          (fun chunk ->
            List.map
              (fun threads -> { fmt with Superschedule.chunk; threads })
              [ Superschedule.Half; Superschedule.Full ])
          [ 1; 4; 16; 64; 256 ])
      (format_grid ())
  in
  grid @ Space.sample_distinct ~guided_fraction:0.5 rng algo ~dims ~count:budget

type row = {
  name : string;
  wl : Workload.t;
  base_time : float;
  f_time : float;
  s_time : float;
  fs_time : float;
  fs_schedule : Superschedule.t;
}

let compute_rows machine =
  let budget = Waco.Config.scaled 150 in
  List.map
    (fun (name, m) ->
      let rng = Lab.rng_for ("motivation-" ^ name) in
      let wl = Workload.of_coo ~id:name m in
      let dims = wl.Workload.dims in
      let base = Superschedule.fixed_default algo in
      let base_time = Costsim.runtime machine wl base in
      let f_best, f_time =
        oracle machine wl (base :: format_only_candidates rng ~dims ~budget)
      in
      let s_best, s_time =
        oracle machine wl (base :: schedule_only_candidates rng ~dims ~budget)
      in
      (* The joint space is a superset of both restricted spaces: seed its
         sampled search with the restricted winners so the sampled oracle
         respects the inclusion. *)
      let fs_schedule, fs_time =
        oracle machine wl
          (base :: f_best :: s_best :: both_candidates rng ~dims ~budget)
      in
      { name; wl; base_time; f_time; s_time; fs_time; fs_schedule })
    (matrices ())

let run () =
  let machine = Machine.intel_like in
  let rows = compute_rows machine in
  Printf.printf "\n=== Table 1: SpMM speedup over base (CSR+default) by tuning space ===\n";
  Printf.printf "%-10s %6s %6s %6s %6s\n" "Name" "Base" "F." "S." "F.+S.";
  List.iter
    (fun r ->
      Printf.printf "%-10s %6s %5.2fx %5.2fx %5.2fx\n" r.name "1x"
        (r.base_time /. r.f_time) (r.base_time /. r.s_time) (r.base_time /. r.fs_time))
    rows;
  Printf.printf
    "(paper: pli 1.03/1.03/1.21, TSOPF 1.11/1.12/2.02, sparsine 2.4/1.02/2.5)\n";
  List.iter
    (fun r -> Printf.printf "  %s F.+S. winner: %s\n" r.name
        (Superschedule.describe r.fs_schedule))
    rows;
  Printf.printf "\n=== Table 2: speedup when applying opt-X to matrix Y ===\n";
  Printf.printf "%-10s" "Name";
  List.iter (fun r -> Printf.printf " %12s" ("opt-" ^ r.name)) rows;
  Printf.printf "\n";
  List.iter
    (fun target ->
      Printf.printf "%-10s" target.name;
      List.iter
        (fun source ->
          (* Dimensions differ across matrices; splits transfer (capped), as
             do loop order, formats and scheduling parameters. *)
          let t = Costsim.runtime machine target.wl source.fs_schedule in
          Printf.printf " %11.2fx" (target.base_time /. t))
        rows;
      Printf.printf "\n")
    rows;
  Printf.printf "(paper diagonal: 1.21 / 2.02 / 2.5; off-diagonal often <1)\n"
