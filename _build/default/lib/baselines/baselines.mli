(** The four baselines of §5.1, reimplemented against the cost simulator
    (substitutions documented in DESIGN.md):

    - [fixed_csr]: TACO with the fixed UC/CSR format (CCC/CSF for MTTKRP)
      and the default schedule;
    - [mkl] / [mkl_naive]: an inspector-executor in MKL's mould — format
      pinned to CSR, only the schedule tuned (SpMV/SpMM only);
    - [best_format]: best of five frequent formats with concordant default
      schedules — an oracle-of-5, {e stronger} than the paper's learned
      classifier, biasing results against WACO;
    - [aspt]: simplified Adaptive Sparse Tiling (SpMM/SDDMM only). *)

open Schedule
open Machine_model

type tuned = {
  name : string;
  kernel_time : float;  (** seconds per kernel invocation *)
  tuning_time : float;  (** one-off search/inspection cost *)
  convert_time : float;  (** one-off format-conversion cost *)
  description : string;
}

val fixed_csr : Machine.t -> Workload.t -> Algorithm.t -> tuned

val mkl_naive : Machine.t -> Workload.t -> Algorithm.t -> tuned
(** MKL without the inspector: CSR with static scheduling — the unit Fig. 17
    and Table 8 normalize against. *)

val mkl : Machine.t -> Workload.t -> Algorithm.t -> tuned
(** Raises [Invalid_argument] for SDDMM/MTTKRP (unsupported by MKL's sparse
    BLAS, per the paper). *)

val best_format_candidates :
  Algorithm.t -> dims:int array -> (string * Superschedule.t) list
(** The candidate formats BestFormat chooses among. *)

val best_format : Machine.t -> Workload.t -> Algorithm.t -> tuned

val aspt : ?panel:int -> ?threshold:int -> Machine.t -> Workload.t -> Algorithm.t -> tuned
(** Column panels of width [panel]; (row, panel) segments with at least
    [threshold] nonzeros form the locality-friendly tiled portion, the rest
    stays CSR.  Raises [Invalid_argument] for SpMV/MTTKRP (the released ASpT
    artifacts cover SpMM and SDDMM only). *)
