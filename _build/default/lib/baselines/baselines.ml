(* The four baselines of §5.1, reimplemented against the cost simulator.

   - [fixed_csr]: TACO with the fixed UC (CSR) format — CCC/CSF for MTTKRP —
     and the paper's default schedule (OpenMP chunk 128 for SpMV, 32 else).
   - [mkl]: an inspector-executor in MKL's mould — the format is pinned to CSR
     and only the *schedule* (chunk size, thread count) is tuned.  SpMV and
     SpMM only, like MKL's sparse BLAS.
   - [best_format]: picks the best of five frequent formats (CSR, CSC, BCSR
     4x4, row-blocked UCU 16, sparse-block UUC 512) with a concordant default
     schedule; a *format-only* tuner.  Our oracle evaluates all five — a
     stronger stand-in than the paper's learned classifier, biasing results
     against WACO.
   - [aspt]: simplified Adaptive Sparse Tiling — column panels; (row, panel)
     segments with enough nonzeros form a locality-friendly tiled portion
     (modelled as a sparse-block format), the remainder stays CSR.  SpMM and
     SDDMM only, like the released ASpT artifacts. *)

open Schedule
open Machine_model

type tuned = {
  name : string;
  kernel_time : float; (* seconds per kernel invocation *)
  tuning_time : float; (* one-off search/inspection cost *)
  convert_time : float; (* one-off format conversion cost *)
  description : string;
}

let fixed_csr machine wl algo =
  let s = Superschedule.fixed_default algo in
  {
    name = "FixedCSR";
    kernel_time = Costsim.runtime machine wl s;
    tuning_time = 0.0;
    convert_time = 0.0;
    description = Superschedule.describe s;
  }

(* MKL without the inspector: the reference "naive" implementation Fig. 17
   normalizes against — CSR with static scheduling (modelled as a coarse
   chunk over full threads). *)
let mkl_naive machine wl algo =
  let base = Superschedule.fixed_default algo in
  let rows = wl.Workload.dims.(0) in
  let static_chunk = max 1 (rows / machine.Machine.smt_threads) in
  let s = { base with Superschedule.chunk = static_chunk } in
  {
    name = "MKL-Naive";
    kernel_time = Costsim.runtime machine wl s;
    tuning_time = 0.0;
    convert_time = 0.0;
    description = Superschedule.describe s;
  }

let mkl machine wl algo =
  (match algo with
  | Algorithm.Spmv | Algorithm.Spmm _ -> ()
  | Algorithm.Sddmm _ | Algorithm.Mttkrp _ ->
      invalid_arg "Baselines.mkl: MKL supports only SpMV and SpMM");
  let base = Superschedule.fixed_default algo in
  (* A realistic inspector tries a small heuristic candidate set, not the
     full chunk menu (MKL's inspection is hint-driven, not exhaustive). *)
  let candidates =
    List.concat_map
      (fun threads ->
        List.map
          (fun chunk -> { base with Superschedule.chunk; threads })
          [ 1; 8; 32 ])
      [ Superschedule.Half; Superschedule.Full ]
  in
  let timed = List.map (fun s -> (s, Costsim.runtime machine wl s)) candidates in
  let best_s, best_t =
    List.fold_left (fun (bs, bt) (s, t) -> if t < bt then (s, t) else (bs, bt))
      (base, Costsim.runtime machine wl base)
      timed
  in
  (* The inspector empirically times each candidate on the fixed format. *)
  let tuning = List.fold_left (fun acc (_, t) -> acc +. t) 0.0 timed in
  {
    name = "MKL";
    kernel_time = best_t;
    tuning_time = tuning;
    convert_time = 0.0; (* format unchanged: no conversion *)
    description = Superschedule.describe best_s;
  }

(* The five candidate formats, as (name, schedule) with concordant default
   schedules (format-only tuning keeps the traversal concordant, §2.1). *)
let best_format_candidates algo ~(dims : int array) =
  let top = Format_abs.Spec.top_var and bot = Format_abs.Spec.bottom_var in
  let u = Format_abs.Levelfmt.U and c = Format_abs.Levelfmt.C in
  match algo with
  | Algorithm.Mttkrp _ ->
      (* 3-D candidates: CSF and two blocked CSF variants. *)
      let csf = Superschedule.fixed_default algo in
      let blocked b =
        Superschedule.concordant_with_format algo ~splits:[| b; b; b |]
          ~a_order:[| top 0; top 1; top 2; bot 0; bot 1; bot 2 |]
          ~a_formats:[| c; c; c; u; u; u |]
      in
      [ ("CSF", csf); ("BCSF2", blocked 2); ("BCSF4", blocked 4) ]
  | Algorithm.Spmv | Algorithm.Spmm _ | Algorithm.Sddmm _ ->
      ignore dims;
      let csr = Superschedule.fixed_default algo in
      let csc =
        Superschedule.concordant_with_format algo ~splits:[| 1; 1 |]
          ~a_order:[| top 1; top 0; bot 1; bot 0 |] ~a_formats:[| u; c; u; u |]
      in
      let bcsr =
        Superschedule.concordant_with_format algo ~splits:[| 4; 4 |]
          ~a_order:[| top 0; top 1; bot 0; bot 1 |] ~a_formats:[| u; c; u; u |]
      in
      let ucu =
        Superschedule.concordant_with_format algo ~splits:[| 16; 1 |]
          ~a_order:[| top 0; top 1; bot 0; bot 1 |] ~a_formats:[| u; c; u; u |]
      in
      let sparse_block =
        Superschedule.concordant_with_format algo ~splits:[| 1; 512 |]
          ~a_order:[| top 1; top 0; bot 1; bot 0 |] ~a_formats:[| u; u; c; u |]
      in
      [
        ("CSR", csr); ("CSC", csc); ("BCSR4x4", bcsr); ("UCU16", ucu);
        ("UUC512", sparse_block);
      ]

let best_format machine wl algo =
  let cands = best_format_candidates algo ~dims:wl.Workload.dims in
  let timed = List.map (fun (n, s) -> (n, s, Costsim.runtime machine wl s)) cands in
  let bn, bs, bt =
    List.fold_left
      (fun (bn, bs, bt) (n, s, t) -> if t < bt then (n, s, t) else (bn, bs, bt))
      (match timed with x :: _ -> x | [] -> assert false)
      timed
  in
  (* A classifier's tuning cost is one featurization + inference pass. *)
  let inference_cycles = (10.0 *. float_of_int wl.Workload.nnz) +. 1e6 in
  {
    name = "BestFormat";
    kernel_time = bt;
    tuning_time = inference_cycles /. machine.Machine.freq_hz;
    convert_time = Costsim.convert_time machine wl bs;
    description = Printf.sprintf "%s: %s" bn (Superschedule.describe bs);
  }

(* --- Simplified ASpT --- *)

let aspt ?(panel = 256) ?(threshold = 8) machine wl algo =
  (match algo with
  | Algorithm.Spmm _ | Algorithm.Sddmm _ -> ()
  | Algorithm.Spmv | Algorithm.Mttkrp _ ->
      invalid_arg "Baselines.aspt: ASpT artifacts cover only SpMM and SDDMM");
  let dims = wl.Workload.dims in
  (* Count nonzeros per (row, panel) segment. *)
  let npanels = (dims.(1) + panel - 1) / panel in
  let seg_count = Hashtbl.create 1024 in
  Array.iter
    (fun (coords, _) ->
      let key = (coords.(0) * npanels) + (coords.(1) / panel) in
      Hashtbl.replace seg_count key
        (1 + Option.value ~default:0 (Hashtbl.find_opt seg_count key)))
    wl.Workload.entries;
  let dense_entries = ref [] and sparse_entries = ref [] in
  Array.iter
    (fun ((coords, v) as e) ->
      let key = (coords.(0) * npanels) + (coords.(1) / panel) in
      if Hashtbl.find seg_count key >= threshold then dense_entries := e :: !dense_entries
      else sparse_entries := e :: !sparse_entries;
      ignore v)
    wl.Workload.entries;
  let part name entries =
    if entries = [] then None
    else
      Some
        (Workload.build ~id:(wl.Workload.id ^ name) ~dims
           ~entries:(Array.of_list entries))
  in
  let tiled = part ".aspt-tiled" !dense_entries in
  let rest = part ".aspt-rest" !sparse_entries in
  (* Tiled portion: panel-major traversal = sparse-block format over the
     column panels (the locality ASpT's reordering buys); remainder: CSR. *)
  let tiled_schedule =
    Superschedule.concordant_with_format algo ~splits:[| 1; panel |]
      ~a_order:
        [|
          Format_abs.Spec.top_var 1; Format_abs.Spec.top_var 0;
          Format_abs.Spec.bottom_var 1; Format_abs.Spec.bottom_var 0;
        |]
      ~a_formats:
        [| Format_abs.Levelfmt.U; Format_abs.Levelfmt.C; Format_abs.Levelfmt.C;
           Format_abs.Levelfmt.U |]
  in
  let csr_schedule = Superschedule.fixed_default algo in
  let time_of part s = match part with
    | None -> 0.0
    | Some w -> Costsim.runtime machine w s
  in
  let kernel_time = time_of tiled tiled_schedule +. time_of rest csr_schedule in
  (* Inspection: two passes over the nonzeros (count, partition). *)
  let tuning = 20.0 *. float_of_int wl.Workload.nnz /. machine.Machine.freq_hz in
  {
    name = "ASpT";
    kernel_time;
    tuning_time = tuning;
    convert_time =
      (let n = float_of_int wl.Workload.nnz in
       8.0 *. n *. log (Float.max 2.0 n) /. machine.Machine.freq_hz);
    description =
      Printf.sprintf "panels=%d tiled_nnz=%d rest_nnz=%d" panel
        (List.length !dense_entries) (List.length !sparse_entries);
  }
