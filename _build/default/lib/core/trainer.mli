(** Cost-model training loop (§4.1.3): per step, one matrix's feature forward
    is shared by a batch of SuperSchedule pairs scored with the pairwise
    hinge ranking loss; optimized by Adam. *)

open Sptensor

type curve = {
  extractor : string;
  epochs : int array;
  train_loss : float array;
  valid_loss : float array;
  valid_acc : float array;  (** pair-ranking accuracy on fixed pairs *)
}

val batch_of_pairs :
  Dataset.sample -> (int * int) array -> Schedule.Superschedule.t array * float array
(** Pair-major batch, oriented slower-first. *)

val random_pairs : Rng.t -> Dataset.sample -> count:int -> (int * int) array

val eval_set : Costmodel.t -> Dataset.sample array -> float * float
(** (mean loss, mean pair accuracy) on fixed validation pairs. *)

val train :
  ?pairs_per_step:int ->
  ?lr:float ->
  ?log:(string -> unit) ->
  Rng.t -> Costmodel.t -> Dataset.t -> epochs:int -> curve
(** Trains in place; clears the model's feature cache on exit (features
    evolved during training). *)
