(* Cost-model training loop (§4.1.3): per step, one matrix's feature forward
   is shared by a batch of SuperSchedule pairs scored with the pairwise hinge
   ranking loss; Adam at lr 1e-4. *)

open Sptensor

type curve = {
  extractor : string;
  epochs : int array;
  train_loss : float array;
  valid_loss : float array;
  valid_acc : float array;
}

(* Assemble a pair-major batch (schedules and truths) from a sample, oriented
   slower-first so every pair carries a ranking constraint. *)
let batch_of_pairs (sample : Dataset.sample) (pairs : (int * int) array) =
  let n = Array.length pairs in
  let schedules = Array.make (2 * n) sample.Dataset.schedules.(0) in
  let truth = Array.make (2 * n) 0.0 in
  Array.iteri
    (fun p (a, b) ->
      let a, b =
        if sample.Dataset.log_runtimes.(a) >= sample.Dataset.log_runtimes.(b) then (a, b)
        else (b, a)
      in
      schedules.(2 * p) <- sample.Dataset.schedules.(a);
      truth.(2 * p) <- sample.Dataset.log_runtimes.(a);
      schedules.((2 * p) + 1) <- sample.Dataset.schedules.(b);
      truth.((2 * p) + 1) <- sample.Dataset.log_runtimes.(b))
    pairs;
  (schedules, truth)

let random_pairs rng (sample : Dataset.sample) ~count =
  let n = Array.length sample.Dataset.schedules in
  Array.init count (fun _ ->
      let a = Rng.int rng n in
      let b = Rng.int rng n in
      (a, if b = a then (b + 1) mod n else b))

(* Ranking loss of the model on a sample's fixed validation pairs
   (forward only). *)
let eval_sample model (sample : Dataset.sample) =
  let schedules, truth = batch_of_pairs sample sample.Dataset.valid_pairs in
  let feature = Extractor.forward model.Costmodel.extractor sample.Dataset.input in
  let embs = Costmodel.embed model schedules in
  let rows = Costmodel.rows_of ~feature ~embs ~batch:(Array.length schedules) in
  let pred = Nn.Mlp.forward model.Costmodel.predictor ~batch:(Array.length schedules) rows in
  let loss, _ = Nn.Loss.pairwise ~min_gap:0.02 ~truth ~pred () in
  let acc = Nn.Loss.pair_accuracy ~truth ~pred in
  (loss, acc)

let eval_set model (samples : Dataset.sample array) =
  if Array.length samples = 0 then (0.0, 1.0)
  else begin
    let tl = ref 0.0 and ta = ref 0.0 in
    Array.iter
      (fun s ->
        let l, a = eval_sample model s in
        tl := !tl +. l;
        ta := !ta +. a)
      samples;
    let n = float_of_int (Array.length samples) in
    (!tl /. n, !ta /. n)
  end

let train ?(pairs_per_step = 16) ?(lr = 1e-3) ?(log = fun _ -> ()) rng model
    (data : Dataset.t) ~epochs =
  let adam = Nn.Adam.create ~lr (Costmodel.params model) in
  let nepochs = max 1 epochs in
  let ep = Array.make nepochs 0 in
  let trl = Array.make nepochs 0.0 in
  let vll = Array.make nepochs 0.0 in
  let vla = Array.make nepochs 0.0 in
  let order = Array.init (Array.length data.Dataset.train) (fun i -> i) in
  for epoch = 0 to nepochs - 1 do
    Rng.shuffle rng order;
    let epoch_loss = ref 0.0 in
    Array.iter
      (fun idx ->
        let sample = data.Dataset.train.(idx) in
        let pairs = random_pairs rng sample ~count:pairs_per_step in
        let schedules, truth = batch_of_pairs sample pairs in
        let pred, backward = Costmodel.forward_train model sample.Dataset.input schedules in
        let loss, dpred = Nn.Loss.pairwise ~min_gap:0.02 ~truth ~pred () in
        epoch_loss := !epoch_loss +. loss;
        backward dpred;
        Nn.Adam.step adam)
      order;
    let vl, va = eval_set model data.Dataset.valid in
    ep.(epoch) <- epoch + 1;
    trl.(epoch) <- !epoch_loss /. float_of_int (max 1 (Array.length order));
    vll.(epoch) <- vl;
    vla.(epoch) <- va;
    log
      (Printf.sprintf "epoch %2d  train_loss=%.4f  val_loss=%.4f  val_acc=%.3f"
         (epoch + 1) trl.(epoch) vl va)
  done;
  (* Features were evolving during training; drop any cached ones. *)
  Costmodel.clear_feature_cache model;
  {
    extractor = Extractor.kind_name model.Costmodel.extractor.Extractor.kind;
    epochs = ep;
    train_loss = trl;
    valid_loss = vll;
    valid_acc = vla;
  }
