(** Dataset persistence: decouples the expensive runtime collection from
    training (the paper's collection ran for two weeks on 10 nodes) and lets
    corpora be merged across runs.  Tuples live in a line-oriented
    [tuples.txt]; 2-D matrices are stored alongside as MatrixMarket files. *)

open Schedule

exception Corrupt of string

val serialize_schedule : Superschedule.t -> string

val parse_schedule : Algorithm.t -> string -> Superschedule.t
(** Raises [Corrupt] on malformed input or algorithm mismatch. *)

val save : Dataset.t -> dir:string -> unit
(** Writes [dir/tuples.txt] plus one [.mtx] per 2-D matrix (creating [dir]). *)

val load :
  dir:string ->
  algo:Algorithm.t ->
  machine:Machine_model.Machine.t ->
  valid_fraction:float ->
  Sptensor.Rng.t ->
  Dataset.t
(** Rebuilds a dataset saved by {!save} (2-D matrices only). *)
