(** Global knobs, overridable from the environment so the same benches can be
    a quick smoke pass or a long full reproduction:

    - [WACO_SEED]: deterministic seed (default 20230325);
    - [WACO_SCALE]: multiplies corpus sizes and search budgets (default 1.0);
    - [WACO_EPOCHS]: training epochs (default 12). *)

val seed : unit -> int

val scale : unit -> float

val epochs : unit -> int

val scaled : int -> int
(** [scaled n = max 1 (round (n * scale ()))]. *)

val channels : int
(** Sparse-conv channel width (paper: 32; scaled for CPU training). *)

val feature_dim : int
(** Width of the sparsity-pattern feature vector. *)

val embed_dim : int
(** Width of the program embedding. *)

val waconet_strided_layers : int
(** Strided layers after the 5x5 stem: covers grids up to [2^n]. *)

val dense_conv_target : int
(** DenseConv baseline's downsampling resolution. *)
