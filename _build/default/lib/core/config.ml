(* Global knobs, overridable from the environment so the same benches can run
   as a quick smoke pass or a long full reproduction:

     WACO_SEED    deterministic seed (default 20230325, the ASPLOS'23 date)
     WACO_SCALE   multiplies corpus sizes / trial budgets (default 1.0)
     WACO_EPOCHS  training epochs (default 12)
*)

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (try float_of_string v with _ -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with _ -> default)
  | None -> default

let seed () = env_int "WACO_SEED" 20230325

let scale () = env_float "WACO_SCALE" 1.0

let epochs () = env_int "WACO_EPOCHS" 12

let scaled n = max 1 (int_of_float (float_of_int n *. scale ()))

(* Network widths. *)
let channels = 6 (* sparse-conv channels (paper: 32; scaled for CPU training) *)

let feature_dim = 64 (* sparsity-pattern feature vector *)

let embed_dim = 32 (* program embedding *)

(* WACONet depth: 1 + strided layers covering grids up to 2^12 = 4096. *)
let waconet_strided_layers = 12

let dense_conv_target = 64 (* DenseConv downsampling resolution *)
