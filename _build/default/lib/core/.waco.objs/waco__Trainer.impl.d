lib/core/trainer.ml: Array Costmodel Dataset Extractor Nn Printf Rng Sptensor
