lib/core/costmodel.mli: Algorithm Embedder Extractor Hashtbl Nn Schedule Sptensor Superschedule
