lib/core/dataset_io.mli: Algorithm Dataset Machine_model Schedule Sptensor Superschedule
