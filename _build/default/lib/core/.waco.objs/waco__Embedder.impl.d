lib/core/embedder.ml: Array Config Encode List Nn Printf Schedule Space Superschedule
