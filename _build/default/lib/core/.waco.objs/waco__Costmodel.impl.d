lib/core/costmodel.ml: Algorithm Array Config Embedder Extractor Fun Hashtbl List Nn Printf Schedule String Superschedule
