lib/core/config.mli:
