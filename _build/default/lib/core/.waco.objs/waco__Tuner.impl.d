lib/core/tuner.ml: Anns Array Config Costmodel Costsim Extractor List Machine_model Schedule Superschedule Unix Workload
