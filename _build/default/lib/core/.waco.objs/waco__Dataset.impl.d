lib/core/dataset.ml: Algorithm Array Coo Costsim Extractor Hashtbl List Machine Machine_model Rng Schedule Space Sptensor Superschedule Tensor3 Workload
