lib/core/extractor.mli: Lazy Nn Sptensor
