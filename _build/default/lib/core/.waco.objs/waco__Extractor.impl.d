lib/core/extractor.ml: Array Config Coo Hashtbl Lazy List Nn Printf Sptensor Stats Tensor3
