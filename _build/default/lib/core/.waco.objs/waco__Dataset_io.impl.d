lib/core/dataset_io.ml: Algorithm Array Coo Dataset Extractor Filename Format_abs Fun Hashtbl List Machine_model Mmio Printf Rng Schedule Sptensor String Superschedule Sys
