lib/core/embedder.mli: Nn Schedule Sptensor Superschedule
