lib/core/tuner.mli: Anns Costmodel Extractor Machine Machine_model Schedule Sptensor Superschedule Workload
