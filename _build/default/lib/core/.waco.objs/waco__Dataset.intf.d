lib/core/dataset.mli: Algorithm Coo Extractor Machine Machine_model Rng Schedule Sptensor Superschedule Tensor3 Workload
