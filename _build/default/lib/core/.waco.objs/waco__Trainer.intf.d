lib/core/trainer.mli: Costmodel Dataset Rng Schedule Sptensor
