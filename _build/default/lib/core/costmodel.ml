(* WACO's cost model (Fig. 6): feature extractor + program embedder + runtime
   predictor.  Trained with the pairwise ranking loss to order SuperSchedules
   per matrix; at inference the sparsity-pattern feature is computed once per
   matrix and reused across every schedule probed (§5.4's search-time
   breakdown depends on exactly this reuse). *)

open Schedule

type t = {
  algo : Algorithm.t;
  extractor : Extractor.t;
  embedder : Embedder.t;
  predictor : Nn.Mlp.t;
  feature_cache : (string, float array) Hashtbl.t;
}

let create rng ?(kind = Extractor.Waconet) (algo : Algorithm.t) =
  let rank = Algorithm.sparse_rank algo in
  {
    algo;
    extractor = Extractor.create rng kind;
    embedder = Embedder.create rng ~rank;
    predictor =
      Nn.Mlp.create rng ~name:"predictor"
        ~dims:[| Config.feature_dim + Config.embed_dim; 64; 32; 1 |]
        ~final_relu:false;
    feature_cache = Hashtbl.create 128;
  }

let params t =
  Extractor.params t.extractor @ Embedder.params t.embedder @ Nn.Mlp.params t.predictor

let param_count t = Nn.Param.total_size (params t)

let row_dim = Config.feature_dim + Config.embed_dim

(* Build predictor input rows: the (shared) feature concatenated with each
   program embedding. *)
let rows_of ~feature ~embs ~batch =
  let fd = Config.feature_dim and ed = Config.embed_dim in
  let rows = Array.make (batch * row_dim) 0.0 in
  for b = 0 to batch - 1 do
    Array.blit feature 0 rows (b * row_dim) fd;
    Array.blit embs (b * ed) rows ((b * row_dim) + fd) ed
  done;
  rows

(* Training-mode forward: returns predictions and a backward closure that
   pushes d(predictions) through predictor, embedder and extractor.  The
   feature is computed once and its gradient accumulated over the batch. *)
let forward_train t (input : Extractor.input) (schedules : Superschedule.t array) =
  let batch = Array.length schedules in
  let feature = Extractor.forward t.extractor input in
  let embs = Embedder.forward t.embedder schedules in
  let rows = rows_of ~feature ~embs ~batch in
  let pred = Nn.Mlp.forward t.predictor ~batch rows in
  let backward dpred =
    let drows = Nn.Mlp.backward t.predictor dpred in
    let fd = Config.feature_dim and ed = Config.embed_dim in
    let dfeat = Array.make fd 0.0 in
    let dembs = Array.make (batch * ed) 0.0 in
    for b = 0 to batch - 1 do
      for i = 0 to fd - 1 do
        dfeat.(i) <- dfeat.(i) +. drows.((b * row_dim) + i)
      done;
      Array.blit drows ((b * row_dim) + fd) dembs (b * ed) ed
    done;
    Embedder.backward t.embedder dembs;
    Extractor.backward t.extractor dfeat
  in
  (pred, backward)

(* --- Inference --- *)

let feature t (input : Extractor.input) =
  match Hashtbl.find_opt t.feature_cache input.Extractor.id with
  | Some f -> f
  | None ->
      let f = Array.copy (Extractor.forward t.extractor input) in
      Hashtbl.add t.feature_cache input.Extractor.id f;
      f

let clear_feature_cache t =
  Hashtbl.reset t.feature_cache;
  Extractor.clear_cache t.extractor

(* Program embeddings for a batch of schedules (the vectors the KNN graph is
   built on). *)
let embed t (schedules : Superschedule.t array) = Embedder.forward t.embedder schedules

(* Predict from a precomputed feature and a precomputed embedding — the cheap
   "final part of the cost model" ANNS runs per graph hop (Fig. 1c). *)
let predict_tail t ~feature ~(embedding : float array) =
  let rows = rows_of ~feature ~embs:embedding ~batch:1 in
  (Nn.Mlp.forward t.predictor ~batch:1 rows).(0)

(* Full prediction for a batch of schedules against one matrix. *)
let predict t (input : Extractor.input) (schedules : Superschedule.t array) =
  let batch = Array.length schedules in
  let feature = feature t input in
  let embs = embed t schedules in
  let rows = rows_of ~feature ~embs ~batch in
  Nn.Mlp.forward t.predictor ~batch rows

(* --- Persistence: flat text dump of all parameters, matched by name. --- *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun p ->
          Printf.fprintf oc "%s %d\n" p.Nn.Param.name (Nn.Param.size p);
          Array.iter (fun v -> Printf.fprintf oc "%.17g\n" v) p.Nn.Param.data)
        (params t))

let load t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      List.iter
        (fun p ->
          let header = input_line ic in
          (match String.split_on_char ' ' header with
          | [ name; n ] when name = p.Nn.Param.name && int_of_string n = Nn.Param.size p ->
              ()
          | _ -> failwith ("Costmodel.load: parameter mismatch at " ^ header));
          for i = 0 to Nn.Param.size p - 1 do
            p.Nn.Param.data.(i) <- float_of_string (input_line ic)
          done)
        (params t));
  clear_feature_cache t
