(** Binary min-heap over (priority, value) pairs; use negated priorities for
    max-heap behaviour.  Backbone of HNSW's candidate/result queues. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Minimum without removing it. *)

val pop : 'a t -> (float * 'a) option

val to_list : 'a t -> (float * 'a) list
(** Current contents in unspecified order. *)
