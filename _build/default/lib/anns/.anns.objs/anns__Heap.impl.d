lib/anns/heap.ml: Array Obj
