lib/anns/hnsw.mli: Sptensor
