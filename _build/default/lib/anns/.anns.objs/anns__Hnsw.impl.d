lib/anns/hnsw.ml: Array Float Hashtbl Heap List Rng Sptensor
