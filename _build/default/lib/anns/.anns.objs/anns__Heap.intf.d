lib/anns/heap.mli:
