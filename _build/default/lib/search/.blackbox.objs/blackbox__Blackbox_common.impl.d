lib/search/blackbox_common.ml: Array Hashtbl List Option Schedule Superschedule Unix
