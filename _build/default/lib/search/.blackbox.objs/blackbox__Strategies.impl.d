lib/search/strategies.ml: Array Blackbox_common List Queue Rng Schedule Space Sptensor Superschedule
