lib/search/strategies.mli: Algorithm Blackbox_common Rng Schedule Sptensor Superschedule
