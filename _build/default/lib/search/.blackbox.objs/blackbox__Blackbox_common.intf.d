lib/search/blackbox_common.mli: Hashtbl Schedule Superschedule
