lib/format_abs/storage_model.ml: Array Float Hashtbl Levelfmt Packed Spec Sptensor
