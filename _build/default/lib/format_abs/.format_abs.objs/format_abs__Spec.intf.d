lib/format_abs/spec.mli: Format Levelfmt
