lib/format_abs/levelfmt.mli: Format
