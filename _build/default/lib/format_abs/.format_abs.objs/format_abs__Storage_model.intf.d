lib/format_abs/storage_model.mli: Spec Sptensor
