lib/format_abs/packed.mli: Format Spec Sptensor
