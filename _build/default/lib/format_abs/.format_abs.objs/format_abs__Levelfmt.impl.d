lib/format_abs/levelfmt.ml: Fmt Printf
