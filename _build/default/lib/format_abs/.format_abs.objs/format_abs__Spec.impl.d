lib/format_abs/spec.ml: Array Buffer Fmt Levelfmt List Printf String
