lib/format_abs/packed.ml: Array Fmt Levelfmt List Spec Sptensor
