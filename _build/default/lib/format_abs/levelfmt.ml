(* The two level formats from TACO's format abstraction (Chou et al. [12])
   that the paper's search space uses.

   - [U] (Uncompressed): the level encodes a dense coordinate interval [0, N);
     positions are implicit, empty slots are materialized (zero-filled).
   - [C] (Compressed): the level stores only coordinates that actually appear,
     via explicit pos/crd arrays. *)

type t = U | C

let to_char = function U -> 'U' | C -> 'C'

let of_char = function
  | 'U' | 'u' -> U
  | 'C' | 'c' -> C
  | c -> invalid_arg (Printf.sprintf "Levelfmt.of_char: %c" c)

let equal (a : t) (b : t) = a = b

let pp ppf t = Fmt.char ppf (to_char t)

let all = [| U; C |]
