(** Physical packing of a sparse tensor into an arbitrary format [Spec]: a
    materialized coordinate hierarchy (Fig. 3 of the paper).  [Dense] (U)
    levels expand every parent position into [size] child slots, zero-filling
    absent ones — the padding a dense-blocked format pays for is visible to
    both the executors and the cost model.  [Compressed] (C) levels store
    explicit pos/crd arrays. *)

type level =
  | Dense of int  (** slot count per parent *)
  | Compressed of { pos : int array; crd : int array }

type t = {
  spec : Spec.t;
  levels : level array;
  vals : float array;  (** one slot per leaf position, zero-filled padding *)
  nnz : int;  (** logical (unpadded) nonzero count *)
}

val default_budget : int
(** Default cap on materialized leaf slots ([2^24]); formats whose zero-fill
    exceeds it are representable analytically but not packed physically. *)

val derived_coord : Spec.t -> logical:unit -> int -> int array -> int
(** [derived_coord spec ~logical lvl coords] maps logical coordinates to the
    coordinate at level [lvl] (top: division, bottom: modulo). *)

val pack :
  ?budget:int -> Spec.t -> (int array * float) array -> (t, string) result
(** Packs entries (logical coordinates + value).  [Error] on duplicate
    coordinates or budget overflow. *)

val of_coo : ?budget:int -> Spec.t -> Sptensor.Coo.t -> (t, string) result
(** Rank-2 convenience wrapper; raises [Invalid_argument] on shape mismatch. *)

val of_tensor3 : ?budget:int -> Spec.t -> Sptensor.Tensor3.t -> (t, string) result

val iter_leaves : t -> (int array -> float -> unit) -> unit
(** Iterates stored leaf slots in storage (concordant) order; the callback
    receives logical coordinates and values of in-bounds slots (including
    stored padding zeros); out-of-bounds padding from non-divisible splits is
    skipped. *)

val to_coo : t -> Sptensor.Coo.t
(** Round-trip back to COO, dropping exact zeros (padding). *)

val to_quads : t -> (int * int * int * float) list
(** Rank-3 round-trip. *)

(** Physical storage accounting (4-byte indices and values, matching the
    paper's single-precision evaluation). *)
type storage = {
  pos_ints : int;
  crd_ints : int;
  nvals : int;
  bytes : int;
  fill_ratio : float;  (** logical nnz / materialized value slots *)
}

val storage_of : t -> storage

val pp : Format.formatter -> t -> unit
