(** Analytic storage model: the pos/crd/value footprint of a format [Spec]
    over a pattern, computed in [O(nnz * levels)] without materializing it —
    so the cost simulator can price formats whose zero-fill would be too
    large to pack (the paper's dataset likewise excludes >1 min schedules,
    but the cost model must still rank them as bad).

    Exactness: validated against physical packing by property tests. *)

type t = {
  pos_ints : int;
  crd_ints : int;
  nvals : float;  (** may exceed array limits for pathological formats *)
  bytes : float;
  fill_ratio : float;
  level_positions : float array;  (** positions per level, root to leaf *)
  level_branching : float array;  (** average children per parent position *)
}

val distinct_prefix_counts : Spec.t -> (int array * float) array -> int array
(** Distinct nonzero coordinate prefixes at each level depth, by exact
    prefix-id interning. *)

val analyze : Spec.t -> (int array * float) array -> t

val analyze_coo : Spec.t -> Sptensor.Coo.t -> t

val analyze_tensor3 : Spec.t -> Sptensor.Tensor3.t -> t
