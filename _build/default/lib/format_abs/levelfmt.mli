(** The two level formats from TACO's format abstraction that the paper's
    search space uses: Uncompressed (dense interval) and Compressed
    (explicit pos/crd arrays). *)

type t =
  | U  (** Uncompressed: encodes a dense coordinate interval [\[0, N)] *)
  | C  (** Compressed: stores only coordinates that appear *)

val to_char : t -> char

val of_char : char -> t
(** Raises [Invalid_argument] on characters other than [U]/[C] (any case). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val all : t array
