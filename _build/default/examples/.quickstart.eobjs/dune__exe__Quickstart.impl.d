examples/quickstart.ml: Algorithm Array Baselines Coo Csr Dense Exec_engine Format_abs Gen List Machine_model Printf Rng Schedule Sptensor Superschedule Waco
