examples/quickstart.mli:
