examples/gnn.mli:
