examples/gnn.ml: Algorithm Array Baselines Coo Csr Dense Exec_engine Float Gen List Machine_model Printf Rng Schedule Sptensor Superschedule Unix Waco
