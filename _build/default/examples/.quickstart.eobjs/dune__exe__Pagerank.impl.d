examples/pagerank.ml: Algorithm Array Baselines Coo Dense Exec_engine Float Gen List Machine_model Printf Rng Schedule Sptensor Superschedule Waco
