examples/pagerank.mli:
