(* A two-layer graph neural network (GCN-style) forward pass over a social
   graph: the repeated-SpMM workload the paper's intro and Table 8(b)
   motivate.  Every message-passing step is A * H — the same sparse matrix
   with changing dense operands, which is exactly when paying WACO's tuning
   cost up front is worth it.

     dune exec examples/gnn.exe *)

open Sptensor
open Schedule

let feature_dim = 16

let relu_inplace (m : Dense.mat) =
  Array.iteri (fun i v -> if v < 0.0 then m.Dense.data.(i) <- 0.0) m.Dense.data

(* H' = ReLU( A_hat * H * W ): message passing then a dense projection. *)
let gcn_layer packed (h : Dense.mat) (w : Dense.mat) =
  let messages = Exec_engine.Kernels.spmm packed h in
  let out = Dense.mat_create messages.Dense.rows w.Dense.cols in
  for i = 0 to messages.Dense.rows - 1 do
    for jo = 0 to w.Dense.cols - 1 do
      let acc = ref 0.0 in
      for ji = 0 to w.Dense.rows - 1 do
        acc := !acc +. (Dense.get messages i ji *. Dense.get w ji jo)
      done;
      Dense.set out i jo !acc
    done
  done;
  relu_inplace out;
  out

let () =
  let rng = Rng.create 23 in
  let machine = Machine_model.Machine.intel_like in
  let algo = Algorithm.Spmm 256 in
  let n = 1500 in

  (* Social graph (power-law degrees), symmetrized and degree-normalized:
     A_hat = D^-1/2 (A + I) D^-1/2. *)
  let raw = Gen.power_law rng ~alpha:1.4 ~nrows:n ~ncols:n ~nnz:40000 in
  let sym =
    Coo.of_triplets ~nrows:n ~ncols:n
      (List.concat_map
         (fun (i, j, v) -> [ (i, j, v); (j, i, v) ])
         (Coo.to_triplets raw)
      @ List.init n (fun i -> (i, i, 1.0)))
  in
  let deg = Array.make n 0.0 in
  Coo.iter (fun i _ v -> deg.(i) <- deg.(i) +. Float.abs v) sym;
  let a_hat =
    Coo.of_triplets ~nrows:n ~ncols:n
      (List.map
         (fun (i, j, v) -> (i, j, v /. sqrt (deg.(i) *. deg.(j))))
         (Coo.to_triplets sym))
  in
  Printf.printf "graph: %d nodes, %d (directed) edges after symmetrization\n%!" n
    (Coo.nnz a_hat);

  (* Train an SpMM cost model on a generic corpus, then tune this graph. *)
  let corpus = Gen.suite rng ~count:14 ~max_dim:1024 ~max_nnz:50000 in
  let mats = List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus in
  let data =
    Waco.Dataset.of_matrices rng machine algo mats ~schedules_per_matrix:24
      ~valid_fraction:0.2
  in
  let model = Waco.Costmodel.create rng algo in
  ignore (Waco.Trainer.train ~lr:2e-3 rng model data ~epochs:8);
  let index = Waco.Tuner.build_index rng model (Waco.Dataset.all_schedules data) in
  let wl = Machine_model.Workload.of_coo ~id:"gnn" a_hat in
  let input = Waco.Extractor.input_of_coo ~id:"gnn" a_hat in
  let waco = Waco.Tuner.tune model machine wl input index in
  let csr = Baselines.fixed_csr machine wl algo in
  let aspt = Baselines.aspt machine wl algo in
  Printf.printf "WACO schedule : %s\n" (Superschedule.describe waco.Waco.Tuner.best);
  Printf.printf "model kernel times: WACO %.2e | FixedCSR %.2e | ASpT %.2e  (speedups %.2fx / %.2fx)\n%!"
    waco.Waco.Tuner.best_measured csr.Baselines.kernel_time aspt.Baselines.kernel_time
    (csr.Baselines.kernel_time /. waco.Waco.Tuner.best_measured)
    (aspt.Baselines.kernel_time /. waco.Waco.Tuner.best_measured);

  (* Real GNN forward pass with the tuned format. *)
  match Exec_engine.Kernels.pack_for waco.Waco.Tuner.best a_hat with
  | Error e -> Printf.printf "pack failed: %s\n" e
  | Ok packed ->
      let h0 = Dense.mat_random rng n feature_dim in
      let w1 = Dense.mat_random rng feature_dim feature_dim in
      let w2 = Dense.mat_random rng feature_dim feature_dim in
      let t0 = Unix.gettimeofday () in
      let h1 = gcn_layer packed h0 w1 in
      let h2 = gcn_layer packed h1 w2 in
      let wall = Unix.gettimeofday () -. t0 in
      (* sanity: compare layer-1 messages against CSR reference *)
      let ref_messages = Csr.spmm (Csr.of_coo a_hat) h0 in
      let got_messages = Exec_engine.Kernels.spmm packed h0 in
      Printf.printf "2-layer GCN forward done in %.3fs (executor wall time)\n" wall;
      Printf.printf "layer-1 messages match CSR reference: %b\n"
        (Dense.mat_approx_equal ~eps:1e-6 got_messages ref_messages);
      let norm =
        sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 h2.Dense.data)
      in
      Printf.printf "||H2||_F = %.4f over %d node embeddings\n" norm h2.Dense.rows
