(* PageRank over a power-law web graph — the paper's Table 8 scenario where an
   auto-tuner must amortize its one-off cost over repeated SpMV calls.

     dune exec examples/pagerank.exe

   The example runs *real* PageRank iterations with the packed-kernel engine
   (so the ranking vector is genuinely computed with the tuned format) and
   accounts end-to-end time with the machine model, comparing WACO against
   the MKL-like inspector-executor and plain CSR. *)

open Sptensor
open Schedule

let damping = 0.85

(* One PageRank iteration: r' = d * A^T r + (1-d)/n, using row-stochastic A.
   We fold the transpose into the matrix construction. *)
let pagerank_iterations packed n ~iters =
  let r = ref (Dense.vec_init n (fun _ -> 1.0 /. float_of_int n)) in
  for _ = 1 to iters do
    let contrib = Exec_engine.Kernels.spmv packed !r in
    let next =
      Array.map (fun c -> ((1.0 -. damping) /. float_of_int n) +. (damping *. c)) contrib
    in
    r := next
  done;
  !r

let () =
  let rng = Rng.create 17 in
  let machine = Machine_model.Machine.intel_like in
  let algo = Algorithm.Spmv in
  let n = 2048 in

  (* A web-like graph: R-MAT, column-normalized so columns sum to 1. *)
  let raw = Gen.rmat rng ~nrows:n ~ncols:n ~nnz:60000 in
  let col_sums = Array.make n 0.0 in
  Coo.iter (fun _ j v -> col_sums.(j) <- col_sums.(j) +. v) raw;
  let web =
    Coo.of_triplets ~nrows:n ~ncols:n
      (List.map
         (fun (i, j, v) -> (i, j, v /. Float.max 1e-12 col_sums.(j)))
         (Coo.to_triplets raw))
  in
  Printf.printf "web graph: %d nodes, %d edges\n%!" n (Coo.nnz web);

  (* Train a small SpMV cost model. *)
  let corpus = Gen.suite rng ~count:14 ~max_dim:1024 ~max_nnz:50000 in
  let mats = List.map (fun (g : Gen.named) -> (g.Gen.name, g.Gen.matrix)) corpus in
  let data =
    Waco.Dataset.of_matrices rng machine algo mats ~schedules_per_matrix:24
      ~valid_fraction:0.2
  in
  let model = Waco.Costmodel.create rng algo in
  ignore (Waco.Trainer.train ~lr:2e-3 rng model data ~epochs:8);
  let index = Waco.Tuner.build_index rng model (Waco.Dataset.all_schedules data) in

  (* Tune the web graph. *)
  let wl = Machine_model.Workload.of_coo ~id:"web" web in
  let input = Waco.Extractor.input_of_coo ~id:"web" web in
  let waco = Waco.Tuner.tune model machine wl input index in
  Printf.printf "WACO schedule: %s\n%!" (Superschedule.describe waco.Waco.Tuner.best);

  (* Really run PageRank with the tuned format. *)
  (match Exec_engine.Kernels.pack_for waco.Waco.Tuner.best web with
  | Error e -> Printf.printf "pack failed: %s\n" e
  | Ok packed ->
      let ranks = pagerank_iterations packed n ~iters:30 in
      let top = Array.mapi (fun i r -> (r, i)) ranks in
      Array.sort (fun (a, _) (b, _) -> compare b a) top;
      Printf.printf "top-5 pages after 30 iterations:";
      Array.iteri (fun k (r, i) -> if k < 5 then Printf.printf " #%d(%.4f)" i r) top;
      print_newline ();
      let total = Array.fold_left ( +. ) 0.0 ranks in
      Printf.printf "rank mass: %.4f (dangling nodes leak mass without redistribution)\n%!" total);

  (* End-to-end accounting (Table 8-style), in naive-kernel units. *)
  let naive = (Baselines.mkl_naive machine wl algo).Baselines.kernel_time in
  let mkl = Baselines.mkl machine wl algo in
  let csr = Baselines.fixed_csr machine wl algo in
  let waco_init = Waco.Tuner.tuning_overhead machine wl waco in
  Printf.printf "\n%-10s %14s %16s\n" "tuner" "init (units)" "kernel (units)";
  Printf.printf "%-10s %14.1f %16.3f\n" "WACO" (waco_init /. naive)
    (waco.Waco.Tuner.best_measured /. naive);
  Printf.printf "%-10s %14.1f %16.3f\n" "MKL" (mkl.Baselines.tuning_time /. naive)
    (mkl.Baselines.kernel_time /. naive);
  Printf.printf "%-10s %14.1f %16.3f\n" "FixedCSR" 0.0 (csr.Baselines.kernel_time /. naive);
  List.iter
    (fun iters ->
      let e2e init kernel = init +. (float_of_int iters *. kernel) in
      Printf.printf "N=%-8d end-to-end: WACO %.0f, MKL %.0f, FixedCSR %.0f (units)\n"
        iters
        (e2e (waco_init /. naive) (waco.Waco.Tuner.best_measured /. naive))
        (e2e (mkl.Baselines.tuning_time /. naive) (mkl.Baselines.kernel_time /. naive))
        (e2e 0.0 (csr.Baselines.kernel_time /. naive)))
    [ 50; 10_000; 1_000_000 ]
