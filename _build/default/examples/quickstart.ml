(* Quickstart: the whole WACO pipeline on one page.

     dune exec examples/quickstart.exe

   1. generate a training corpus of sparsity patterns;
   2. collect (matrix, SuperSchedule, runtime) tuples from the machine model;
   3. train the WACONet cost model with the pairwise ranking loss;
   4. build the KNN graph over program embeddings;
   5. tune a *new* matrix via ANNS and compare against fixed CSR —
   then actually execute the chosen format with the packed-kernel engine to
   show the tuned schedule is a real, runnable format. *)

open Sptensor
open Schedule

let () =
  let rng = Rng.create 42 in
  let machine = Machine_model.Machine.intel_like in
  let algo = Algorithm.Spmm 256 in

  print_endline "== 1. corpus ==";
  let corpus = Gen.suite rng ~count:12 ~max_dim:768 ~max_nnz:40000 in
  let mats = List.map (fun (n : Gen.named) -> (n.Gen.name, n.Gen.matrix)) corpus in
  (* Make sure the demo corpus covers the large-scattered regime the test
     matrix lives in (a real corpus would be much larger, cf. bench/). *)
  let mats =
    mats
    @ List.init 6 (fun i ->
          let n = 4000 + (500 * i) in
          ( Printf.sprintf "scattered%d" i,
            Gen.uniform rng ~nrows:n ~ncols:n ~nnz:(n * 30) ))
  in
  Printf.printf "generated %d matrices\n%!" (List.length mats);

  print_endline "== 2. dataset (ground-truth runtimes from the machine model) ==";
  let data =
    Waco.Dataset.of_matrices rng machine algo mats ~schedules_per_matrix:32
      ~valid_fraction:0.2
  in
  Printf.printf "collected %d (matrix, schedule, runtime) tuples\n%!"
    (Waco.Dataset.total_tuples data);

  print_endline "== 3. training the cost model ==";
  let model = Waco.Costmodel.create rng algo in
  let curve =
    Waco.Trainer.train ~lr:2e-3 ~log:print_endline rng model data ~epochs:12
  in
  Printf.printf "final validation ranking accuracy: %.3f\n%!"
    curve.Waco.Trainer.valid_acc.(Array.length curve.Waco.Trainer.valid_acc - 1);

  print_endline "== 4. KNN graph over program embeddings ==";
  let index = Waco.Tuner.build_index rng model (Waco.Dataset.all_schedules data) in
  Printf.printf "HNSW over %d SuperSchedules built in %.2fs\n%!"
    index.Waco.Tuner.corpus_size index.Waco.Tuner.build_seconds;

  print_endline "== 5. tune a new matrix ==";
  (* A sparsine-like system: large and scattered — the regime where the
     sparse-block (UUC) formats the paper's 5.2.1 discusses win big. *)
  let m = Gen.sparsine_like rng in
  let wl = Machine_model.Workload.of_coo ~id:"quickstart" m in
  let input = Waco.Extractor.input_of_coo ~id:"quickstart" m in
  let result = Waco.Tuner.tune ~k:15 ~ef:96 model machine wl input index in
  let csr = Baselines.fixed_csr machine wl algo in
  Printf.printf "WACO chose : %s\n" (Superschedule.describe result.Waco.Tuner.best);
  Printf.printf "WACO       : %.2e s/kernel (feature %.3fs + search %.4fs, %d model evals)\n"
    result.Waco.Tuner.best_measured result.Waco.Tuner.feature_seconds
    result.Waco.Tuner.search_seconds result.Waco.Tuner.cost_evals;
  Printf.printf "Fixed CSR  : %.2e s/kernel\n" csr.Baselines.kernel_time;
  Printf.printf "speedup    : %.2fx\n%!"
    (csr.Baselines.kernel_time /. result.Waco.Tuner.best_measured);

  print_endline "== 6. execute the tuned format for real ==";
  let bdense = Dense.mat_random rng m.Coo.ncols 8 in
  (match Exec_engine.Kernels.pack_for result.Waco.Tuner.best m with
  | Error e -> Printf.printf "could not pack: %s\n" e
  | Ok packed ->
      let c = Exec_engine.Kernels.spmm packed bdense in
      let reference = Csr.spmm (Csr.of_coo m) bdense in
      Printf.printf "packed kernel matches CSR reference: %b\n"
        (Dense.mat_approx_equal ~eps:1e-6 c reference);
      let st = Format_abs.Packed.storage_of packed in
      Printf.printf "chosen format %s: %d value slots (fill %.2f), %d pos + %d crd ints\n"
        (Format_abs.Spec.name packed.Format_abs.Packed.spec)
        st.Format_abs.Packed.nvals st.Format_abs.Packed.fill_ratio
        st.Format_abs.Packed.pos_ints st.Format_abs.Packed.crd_ints)
